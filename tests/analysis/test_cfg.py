"""CFG builder: edge cases and the every-statement-exactly-once law."""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    build_cfg,
    expr_contains_await,
    iter_function_defs,
    stmt_suspends,
)


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = dict(iter_function_defs(tree))
    if name is None:
        (name,) = [n for n in funcs if "." not in n]
    return build_cfg(funcs[name])


def scope_statements(func):
    """Reference walker: every statement in the function's own scope."""
    out = []

    def walk_body(body):
        for stmt in body:
            out.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scope: the def itself is the statement
            for attr in ("body", "orelse", "finalbody"):
                walk_body(getattr(stmt, attr, None) or [])
            for handler in getattr(stmt, "handlers", None) or []:
                walk_body(handler.body)
            for case in getattr(stmt, "cases", None) or []:
                walk_body(case.body)

    walk_body(func.body)
    return out


def assert_placement_law(cfg):
    """Every scope statement lands in exactly one basic block."""
    placed = cfg.statement_blocks()
    expected = scope_statements(cfg.func)
    assert set(placed) == {id(s) for s in expected}
    counts = {}
    for block in cfg.blocks:
        for stmt in block.stmts:
            counts[id(stmt)] = counts.get(id(stmt), 0) + 1
    assert all(v == 1 for v in counts.values())


def assert_graph_consistent(cfg):
    ids = {b.id for b in cfg.blocks}
    for block in cfg.blocks:
        assert set(block.succs) <= ids
        for succ in block.succs:
            assert block.id in cfg.block(succ).preds
        for pred in block.preds:
            assert block.id in cfg.block(pred).succs


class TestAwaitBoundaries:
    def test_await_ends_its_block(self):
        cfg = cfg_of(
            """
            async def f():
                a = 1
                await thing()
                b = 2
            """
        )
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        await_block = placed[id(stmts[1])]
        assert cfg.block(await_block).suspends
        # The statement after the await lives in a different block.
        assert placed[id(stmts[2])] != await_block

    def test_sync_function_has_no_suspension(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
            """
        )
        assert not any(b.suspends for b in cfg.blocks)


class TestTryFinally:
    def test_finally_joins_body_and_handler_paths(self):
        cfg = cfg_of(
            """
            async def f():
                try:
                    risky()
                except ValueError:
                    handled()
                finally:
                    cleanup()
                after()
            """
        )
        assert_placement_law(cfg)
        assert_graph_consistent(cfg)
        placed = cfg.statement_blocks()
        by_name = {
            s.value.func.id: placed[id(s)]
            for s in scope_statements(cfg.func)
            if isinstance(s, ast.Expr) and isinstance(s.value, ast.Call)
        }
        finally_block = by_name["cleanup"]
        # Both the body and the handler flow into the finally.
        preds = set(cfg.block(finally_block).preds)
        assert by_name["risky"] in preds
        assert by_name["handled"] in preds
        # The finally both continues to `after` and re-raises to exit.
        succs = set(cfg.block(finally_block).succs)
        assert by_name["after"] in succs
        assert cfg.exit in succs

    def test_body_has_conservative_edge_into_handler(self):
        cfg = cfg_of(
            """
            async def f():
                try:
                    risky()
                    more()
                except ValueError:
                    handled()
            """
        )
        placed = cfg.statement_blocks()
        by_name = {
            s.value.func.id: placed[id(s)]
            for s in scope_statements(cfg.func)
            if isinstance(s, ast.Expr)
        }
        handler = by_name["handled"]
        # Every block of the try body may raise into the handler.
        assert by_name["risky"] in cfg.block(handler).preds
        assert by_name["more"] in cfg.block(handler).preds


class TestAsyncWith:
    def test_entry_and_exit_are_suspension_boundaries(self):
        cfg = cfg_of(
            """
            async def f():
                async with lock:
                    body()
                after()
            """
        )
        assert_placement_law(cfg)
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        header_block = placed[id(stmts[0])]
        assert cfg.block(header_block).suspends  # __aenter__
        body_block = placed[id(stmts[1])]
        assert cfg.block(body_block).suspends  # __aexit__ after the body
        assert placed[id(stmts[2])] != body_block

    def test_sync_with_does_not_suspend(self):
        cfg = cfg_of(
            """
            async def f():
                with lock:
                    body()
            """
        )
        assert not any(b.suspends for b in cfg.blocks)


class TestLoops:
    def test_while_true_has_no_normal_exit(self):
        cfg = cfg_of(
            """
            async def f():
                while True:
                    tick()
                unreachable()
            """
        )
        assert_placement_law(cfg)
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        header = placed[id(stmts[0])]
        after = placed[id(stmts[2])]
        assert after not in cfg.block(header).succs
        # The dead continuation is still a block of its own.
        assert after not in {
            b
            for b in cfg.reverse_postorder()[: len(cfg.blocks)]
            if b == header
        }

    def test_while_true_break_reaches_after(self):
        cfg = cfg_of(
            """
            async def f():
                while True:
                    if done():
                        break
                after()
            """
        )
        assert_placement_law(cfg)
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        break_stmt = next(
            s for s in stmts if isinstance(s, ast.Break)
        )
        after_stmt = stmts[-1]
        assert placed[id(after_stmt)] in cfg.block(
            placed[id(break_stmt)]
        ).succs

    def test_loop_orelse_runs_on_normal_exhaustion(self):
        cfg = cfg_of(
            """
            async def f():
                for i in items:
                    body()
                else:
                    orelse()
                after()
            """
        )
        assert_placement_law(cfg)
        placed = cfg.statement_blocks()
        by_name = {
            s.value.func.id: placed[id(s)]
            for s in scope_statements(cfg.func)
            if isinstance(s, ast.Expr)
        }
        stmts = scope_statements(cfg.func)
        header = placed[id(stmts[0])]
        # header -> orelse -> after, and header never skips to after.
        assert by_name["orelse"] in cfg.block(header).succs
        assert by_name["after"] not in cfg.block(header).succs
        assert by_name["after"] in cfg.block(by_name["orelse"]).succs

    def test_async_for_suspends_each_iteration(self):
        cfg = cfg_of(
            """
            async def f():
                async for item in source:
                    body()
            """
        )
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        assert cfg.block(placed[id(stmts[0])]).suspends

    def test_continue_targets_loop_header(self):
        cfg = cfg_of(
            """
            async def f():
                while cond():
                    if skip():
                        continue
                    body()
            """
        )
        assert_placement_law(cfg)
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        header = placed[id(stmts[0])]
        cont = next(s for s in stmts if isinstance(s, ast.Continue))
        assert header in cfg.block(placed[id(cont)]).succs


class TestNestedScopes:
    def test_nested_function_body_is_not_inlined(self):
        cfg = cfg_of(
            """
            async def f():
                a = 1

                def helper():
                    hidden = 2
                    return hidden

                b = helper()
            """,
            name="f",
        )
        assert_placement_law(cfg)
        placed_lines = {
            s.lineno for b in cfg.blocks for s in b.stmts
        }
        tree_lines = {
            n.lineno
            for n in ast.walk(cfg.func)
            if isinstance(n, ast.Assign)
        }
        # `hidden = 2` belongs to helper's CFG, not f's.
        assert len(placed_lines) < len(tree_lines) + 2
        names = [
            t.id
            for b in cfg.blocks
            for s in b.stmts
            if isinstance(s, ast.Assign)
            for t in s.targets
            if isinstance(t, ast.Name)
        ]
        assert "hidden" not in names

    def test_lambda_is_a_scope_barrier_for_await_detection(self):
        # An await cannot occur in a lambda, but a nested async def can
        # hold one; the outer statement must not be treated as awaiting.
        src = "cb = lambda x: x + 1"
        stmt = ast.parse(src).body[0]
        assert not stmt_suspends(stmt)
        inner = ast.parse(
            "async def g():\n    await h()\n"
        ).body[0]
        assert not expr_contains_await(inner)

    def test_iter_function_defs_yields_nested_qualnames(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class C:
                    async def m(self):
                        def inner():
                            pass
                """
            )
        )
        names = [n for n, _ in iter_function_defs(tree)]
        assert names == ["C.m", "C.m.<locals>.inner"]


class TestTerminators:
    def test_statements_after_return_still_get_a_block(self):
        cfg = cfg_of(
            """
            async def f():
                return 1
                dead()
            """
        )
        assert_placement_law(cfg)

    def test_raise_edges_to_exit(self):
        cfg = cfg_of(
            """
            async def f():
                raise ValueError("boom")
            """
        )
        placed = cfg.statement_blocks()
        stmts = scope_statements(cfg.func)
        assert cfg.exit in cfg.block(placed[id(stmts[0])]).succs


# ---------------------------------------------------------------------------
# Hypothesis: random function bodies obey the placement law.
# ---------------------------------------------------------------------------

_SIMPLE = st.sampled_from(
    [
        "x = 1",
        "y = x + 1",
        "await asyncio.sleep(0)",
        "x += 1",
        "pass",
        "call(x)",
        "return x",
        "raise ValueError()",
        "BREAK",  # placeholder: rendered as break inside loops, pass outside
        "CONTINUE",
    ]
)


def _stmt_tree(depth):
    if depth <= 0:
        return _SIMPLE
    sub = st.lists(_stmt_tree(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        _SIMPLE,
        st.tuples(st.just("if"), sub, sub),
        st.tuples(st.just("while"), sub),
        st.tuples(st.just("while_true"), sub),
        st.tuples(st.just("for"), sub, sub),
        st.tuples(st.just("async_for"), sub),
        st.tuples(st.just("with"), sub),
        st.tuples(st.just("async_with"), sub),
        st.tuples(st.just("try"), sub, sub, sub),
        st.tuples(st.just("nested_def"), sub),
    )


def _render(node, indent, in_loop):
    pad = "    " * indent
    if isinstance(node, str):
        if node == "BREAK":
            node = "break" if in_loop else "pass"
        elif node == "CONTINUE":
            node = "continue" if in_loop else "pass"
        return [pad + node]
    kind = node[0]
    bodies = node[1:]

    def block(body, extra_indent=1, loop=in_loop):
        lines = []
        for child in body:
            lines += _render(child, indent + extra_indent, loop)
        return lines

    if kind == "if":
        return (
            [pad + "if cond:"]
            + block(bodies[0])
            + [pad + "else:"]
            + block(bodies[1])
        )
    if kind == "while":
        return [pad + "while cond:"] + block(bodies[0], loop=True)
    if kind == "while_true":
        return [pad + "while True:"] + block(bodies[0], loop=True)
    if kind == "for":
        return (
            [pad + "for i in items:"]
            + block(bodies[0], loop=True)
            + [pad + "else:"]
            + block(bodies[1])
        )
    if kind == "async_for":
        return [pad + "async for i in items:"] + block(bodies[0], loop=True)
    if kind == "with":
        return [pad + "with ctx:"] + block(bodies[0])
    if kind == "async_with":
        return [pad + "async with ctx:"] + block(bodies[0])
    if kind == "try":
        return (
            [pad + "try:"]
            + block(bodies[0])
            + [pad + "except ValueError:"]
            + block(bodies[1])
            + [pad + "finally:"]
            + block(bodies[2])
        )
    if kind == "nested_def":
        # Nested scope: break/continue inside it are NOT governed by an
        # outer loop, so render its body with in_loop=False.
        return [pad + "def inner():"] + block(bodies[0], loop=False)
    raise AssertionError(kind)


@given(st.lists(_stmt_tree(3), min_size=1, max_size=5))
@settings(max_examples=80, deadline=None)
def test_every_statement_lands_in_exactly_one_block(body):
    lines = ["async def f():"]
    for node in body:
        lines += _render(node, 1, False)
    source = "\n".join(lines) + "\n"
    tree = ast.parse(source)  # the generator must emit valid syntax
    funcs = dict(iter_function_defs(tree))
    for _name, func in funcs.items():
        cfg = build_cfg(func)
        assert_placement_law(cfg)
        assert_graph_consistent(cfg)
        order = cfg.reverse_postorder()
        assert sorted(order) == sorted(b.id for b in cfg.blocks)
