# repro: module-path=workloads/fake_draws.py
"""BAD: module-level entropy instead of a named RngStream."""
import random


def draw() -> float:
    return random.random()
