# repro: module-path=workloads/fake_draws.py
"""GOOD: all draws flow through a named, seeded stream."""
from repro.sim.random import RngStreams


def draw(streams: RngStreams) -> float:
    return float(streams.get("fake-draws").random())
