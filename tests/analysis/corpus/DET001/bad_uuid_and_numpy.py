# repro: module-path=experiments/fake_ids.py
"""BAD: non-deterministic ids and ad-hoc numpy generators."""
import numpy as np
from uuid import uuid4


def fresh_id() -> str:
    return str(uuid4())


def fresh_rng() -> "np.random.Generator":
    return np.random.default_rng()
