# repro: module-path=experiments/fake_config.py
"""GOOD: failures use the repro.errors taxonomy."""
from repro.errors import ConfigurationError


def check(interval_s: float) -> None:
    if interval_s <= 0:
        raise ConfigurationError(f"bad interval: {interval_s!r}")
