# repro: module-path=experiments/fake_config.py
"""BAD: failures raised as anonymous builtin exceptions."""


def check(interval_s: float) -> None:
    if interval_s <= 0:
        raise ValueError(f"bad interval: {interval_s!r}")
