# repro: module-path=core/fake_api.py
"""GOOD: fully annotated public surface; private helpers are free."""


def burst_cost(nbytes: int) -> int:
    return nbytes * 8


class Burster:
    def __init__(self, rate_bps: float) -> None:
        self.rate_bps = rate_bps

    def send(self, nbytes: int) -> int:
        return self._clip(nbytes)

    def _clip(self, nbytes):
        return max(0, nbytes)
