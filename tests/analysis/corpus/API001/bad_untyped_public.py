# repro: module-path=core/fake_api.py
"""BAD: public surface without type annotations."""


def burst_cost(nbytes):
    return nbytes * 8


class Burster:
    def send(self, nbytes):
        return nbytes
