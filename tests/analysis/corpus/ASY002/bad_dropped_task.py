# repro: module-path=runtime/fake_spawn.py
"""BAD: fire-and-forget tasks whose handles are dropped."""

import asyncio


async def kick_off(work) -> None:
    asyncio.create_task(work())         # dropped: may be GC'd mid-flight
    asyncio.ensure_future(work())       # same failure via the old spelling
    _ = asyncio.create_task(work())     # assigning to _ is still dropping
