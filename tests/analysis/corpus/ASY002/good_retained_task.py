# repro: module-path=runtime/fake_spawn.py
"""GOOD: task handles are retained, supervised, or awaited."""

import asyncio


class Owner:
    def __init__(self, supervisor) -> None:
        self.supervisor = supervisor
        self._tasks: set = set()

    async def kick_off(self, work) -> None:
        task = asyncio.create_task(work())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        self.supervisor.spawn(work())   # supervisor accounts for it
        await task
