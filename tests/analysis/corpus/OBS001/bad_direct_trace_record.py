# repro: module-path=core/fake_component.py
"""BAD: components write trace rows behind the Recorder facade's back."""


class FakeComponent:
    def __init__(self, sim, trace):
        self.sim = sim
        self.trace = trace

    def burst(self, client: str, sent: int) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, "proxy.burst", client=client, sent=sent)


def standalone(trace, now: float) -> None:
    trace.record(now, "node.drop", reason="no-route")
