# repro: module-path=core/fake_component.py
"""GOOD: telemetry flows through the obs.Recorder facade."""

from repro.obs import Recorder
from repro.sim import Simulator


class FakeComponent:
    def __init__(self, sim: Simulator, obs: Recorder) -> None:
        self.sim = sim
        self.obs = obs

    def burst(self, client: str, sent: int) -> None:
        self.obs.event(self.sim.now, "proxy.burst", client=client, sent=sent)
        self.obs.inc("proxy.bursts", client=client)
