# repro: module-path=core/fake_routes.py
"""BAD: schedule-relevant iteration order taken from a set."""


def route_order(client_ips: set[str]) -> list[str]:
    return [ip for ip in client_ips]


def wire(client_ips: set[str]) -> None:
    for ip in client_ips:
        print(ip)
