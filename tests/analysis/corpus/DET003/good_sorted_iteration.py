# repro: module-path=core/fake_routes.py
"""GOOD: sets are sorted before their order can matter."""


def route_order(client_ips: set[str]) -> list[str]:
    return [ip for ip in sorted(client_ips)]


def has_client(client_ips: set[str], ip: str) -> bool:
    return ip in client_ips  # membership tests are order-free
