# repro: module-path=runtime/fake_slots.py
"""GOOD: reads are re-done or re-validated on the far side of the await."""

import asyncio


class SlotPool:
    def __init__(self) -> None:
        self.free_slots = 4
        self.stats = {"admitted": 0}

    async def admit(self) -> None:
        await asyncio.sleep(0)
        # Read after the suspension: nothing can interleave in between.
        free = self.free_slots
        self.free_slots = free - 1

    async def admit_checked(self) -> None:
        free = self.free_slots
        await asyncio.sleep(0)
        if self.free_slots == free:  # re-validate before committing
            self.free_slots = free - 1

    async def bump(self, key: str) -> None:
        await asyncio.sleep(0)
        self.stats[key] = self.stats[key] + 1
