# repro: module-path=runtime/fake_slots.py
"""BAD: shared state read before an await, written from the stale value."""

import asyncio


class SlotPool:
    def __init__(self) -> None:
        self.free_slots = 4
        self.stats = {"admitted": 0}

    async def admit(self) -> None:
        free = self.free_slots
        await asyncio.sleep(0)  # another task may admit/evict here
        self.free_slots = free - 1

    async def bump(self, key: str) -> None:
        count = self.stats[key]
        await asyncio.sleep(0)
        self.stats[key] = count + 1
