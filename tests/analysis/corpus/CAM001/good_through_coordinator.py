# repro: module-path=campus/mobility.py
"""GOOD: the roam delegates the migration to the coordinator."""


def roam(client_ip, old_index, new_index, coordinator):
    coordinator.handoff(client_ip, old_index, new_index)
