# repro: module-path=campus/handoff.py
"""GOOD: the coordinator is the one blessed caller of the primitives."""


def handoff(client_ip, old_cell, new_cell):
    entries, dropped = old_cell.proxy.release_client(client_ip)
    new_cell.proxy.adopt_client(client_ip, entries)
    return dropped
