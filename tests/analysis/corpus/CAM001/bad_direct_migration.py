# repro: module-path=campus/mobility.py
"""BAD: a roam moves queue state between shards by hand."""


def roam(client_ip, old_cell, new_cell, hub, uplink):
    entries, dropped = old_cell.proxy.release_client(client_ip)
    old_cell.scheduler.forget_client(client_ip)
    new_cell.proxy.adopt_client(client_ip, entries)
    hub.add_route(client_ip, uplink)
    return dropped
