# repro: module-path=experiments/fake_waivers.py
"""GOOD: the waiver matches a real finding and states a reason."""


def check(flag: bool) -> None:
    if flag:
        raise ValueError("demo")  # repro: noqa[ERR001] -- fixture demonstrating a used waiver
