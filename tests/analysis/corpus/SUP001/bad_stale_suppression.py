# repro: module-path=experiments/fake_waivers.py
"""BAD: a waiver whose finding no longer exists."""

INTERVAL_COUNT = 4  # repro: noqa[ERR001] -- stale waiver, nothing raised here
