# repro: module-path=runtime/fake_block.py
"""GOOD: asyncio equivalents, or blocking work pushed off the loop."""

import asyncio
import subprocess
import time


async def pace() -> None:
    await asyncio.sleep(0.1)


async def probe(host: str) -> bytes:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, 80), timeout=5.0
    )
    loop = asyncio.get_running_loop()
    out = await loop.run_in_executor(
        None, lambda: subprocess.check_output(["dig", host])
    )
    writer.close()
    await asyncio.wait_for(writer.wait_closed(), timeout=5.0)
    return out


def sync_helper() -> float:
    time.sleep(0.1)  # fine: not an async def
    return time.monotonic()
