# repro: module-path=runtime/fake_block.py
"""BAD: synchronous sleep and I/O inside async def stall the loop."""

import socket
import subprocess
import time


async def pace() -> None:
    time.sleep(0.1)                      # freezes every client


async def probe(host: str) -> bytes:
    sock = socket.create_connection((host, 80))
    out = subprocess.check_output(["dig", host])
    with open("/etc/hosts") as fh:       # sync file I/O on the loop
        fh.read()
    sock.close()
    return out
