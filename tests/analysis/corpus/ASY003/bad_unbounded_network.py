# repro: module-path=runtime/fake_dial.py
"""BAD: network awaits with no timeout anywhere on the path."""

import asyncio


async def fetch(host: str, port: int) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /\r\n")
    await writer.drain()                 # peer may never empty the buffer
    payload = await reader.read(65536)   # peer may never answer
    writer.close()
    await writer.wait_closed()           # peer may never FIN
    return payload
