# repro: module-path=runtime/fake_dial.py
"""GOOD: every network await is bounded by wait_for or a timeout scope."""

import asyncio


async def fetch(host: str, port: int) -> bytes:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=5.0
    )
    writer.write(b"GET /\r\n")
    await asyncio.wait_for(writer.drain(), timeout=5.0)
    async with asyncio.timeout(5.0):
        payload = await reader.read(65536)
        writer.close()
        await writer.wait_closed()
    return payload
