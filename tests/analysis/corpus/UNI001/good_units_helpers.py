# repro: module-path=core/fake_timers.py
"""GOOD: every time/size constant names its unit."""
from repro.units import kib, ms

GUARD_S = ms(2)
BUFFER_BYTES = kib(64)


def wait(poll_s: float = ms(4)) -> float:
    return poll_s
