# repro: module-path=core/fake_timers.py
"""BAD: bare sub-second floats and raw byte counts."""

GUARD_S = 0.002
BUFFER_BYTES = 65536


def wait(poll_s: float = 0.004) -> float:
    return poll_s
