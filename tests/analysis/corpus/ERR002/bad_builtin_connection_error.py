# repro: module-path=net/fake_tcp.py
"""BAD: sim code catching the builtin instead of ConnectionError_."""


def poke(conn) -> None:
    try:
        conn.send(1)
    except ConnectionError:
        conn.reset()
