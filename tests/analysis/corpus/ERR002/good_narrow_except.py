# repro: module-path=experiments/fake_runner.py
"""GOOD: taxonomy-scoped catch; broad catch re-raises."""
from repro.errors import ReproError, SchedulingError


def run(step) -> bool:
    try:
        step()
    except ReproError:
        return False
    return True


def guard(step) -> None:
    try:
        step()
    except Exception as exc:
        raise SchedulingError(f"step failed: {exc}") from exc
