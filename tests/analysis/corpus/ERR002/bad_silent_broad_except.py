# repro: module-path=experiments/fake_runner.py
"""BAD: a broad except that swallows every failure silently."""


def run(step) -> bool:
    try:
        step()
    except Exception:
        return False
    return True
