# repro: module-path=sim/fake_clock.py
"""GOOD: time comes from the simulator's clock."""
from repro.sim.core import Simulator


def stamp(sim: Simulator) -> float:
    return sim.now
