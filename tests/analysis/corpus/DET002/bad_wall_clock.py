# repro: module-path=sim/fake_clock.py
"""BAD: reads the host clock inside simulated-time code."""
import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def today() -> str:
    return datetime.now().isoformat()
