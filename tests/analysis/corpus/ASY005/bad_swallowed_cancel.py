# repro: module-path=runtime/fake_cancel.py
"""BAD: CancelledError caught and swallowed; the task is uncancellable."""

import asyncio


async def serve(queue) -> None:
    while True:
        try:
            item = await queue.get()
        except asyncio.CancelledError:
            continue                     # cancellation silently ignored
        try:
            print(item)
        except (ValueError, asyncio.CancelledError):
            pass                         # swallowed inside a tuple too
