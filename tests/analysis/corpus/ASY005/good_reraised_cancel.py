# repro: module-path=runtime/fake_cancel.py
"""GOOD: cleanup on cancellation, then re-raise so teardown completes."""

import asyncio


async def serve(queue, writer) -> None:
    while True:
        try:
            item = await queue.get()
        except asyncio.CancelledError:
            writer.close()               # clean up ...
            raise                        # ... and propagate
        print(item)


async def reap(task) -> None:
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:  # repro: noqa[ASY005] -- we cancelled it ourselves; absorbing here is the reap
        pass
