# repro: module-path=sim/fake_worker.py
"""GOOD: the process advances virtual time by yielding events."""
from typing import Iterator

from repro.sim.core import Event, Simulator
from repro.units import ms


def work(sim: Simulator) -> Iterator[Event]:
    yield sim.timeout(ms(100))
