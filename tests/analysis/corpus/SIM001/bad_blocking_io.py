# repro: module-path=sim/fake_worker.py
"""BAD: real files, sockets and sleeps inside a sim process."""
import socket
import time


def work(path: str) -> bytes:
    time.sleep(0.1)
    with open(path, "rb") as handle:
        return handle.read()
