# repro: module-path=experiments/figures.py
"""BAD: a figure driver invokes the simulation runner directly."""

from repro.experiments.runner import run_experiment, video_only


def figure_direct(seed: int = 0) -> list[dict]:
    rows = []
    for rate in (56, 256):
        result = run_experiment(video_only([rate] * 4, seed=seed))
        rows.append({"rate": rate, "saved": result.summary.avg_saved_pct})
    return rows
