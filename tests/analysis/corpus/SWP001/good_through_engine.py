# repro: module-path=experiments/figures.py
"""GOOD: the driver expands a SweepSpec and runs it through the engine."""

from repro.experiments.runner import video_only
from repro.sweep import SweepEngine, SweepSpec


def figure_swept(seed: int = 0) -> list[dict]:
    rates = (56, 256)
    configs = [video_only([rate] * 4, seed=seed) for rate in rates]
    labels = [{"rate": rate} for rate in rates]
    outcome = SweepEngine().run(
        SweepSpec.experiments("figure_swept", configs, labels)
    )
    return [
        {"rate": label["rate"], "saved": result.summary.avg_saved_pct}
        for label, result in zip(labels, outcome.results)
    ]
