"""Flow-sensitivity of the ASY rules beyond the corpus fixtures."""

import textwrap

from repro.analysis import analyze_source


def run(source, module_path="runtime/fake.py"):
    findings = analyze_source(
        textwrap.dedent(source), "fake.py", module_path
    )
    return [(f.rule, f.line) for f in findings]


def rules_of(source):
    return {rule for rule, _line in run(source)}


class TestAsy001FlowSensitivity:
    def test_stale_rmw_is_flagged(self):
        assert "ASY001" in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    v = self.slots
                    await asyncio.sleep(0)
                    self.slots = v - 1
            """
        )

    def test_read_after_await_is_clean(self):
        assert "ASY001" not in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    await asyncio.sleep(0)
                    v = self.slots
                    self.slots = v - 1
            """
        )

    def test_revalidation_branch_is_clean(self):
        assert "ASY001" not in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    v = self.slots
                    await asyncio.sleep(0)
                    if self.slots == v:
                        self.slots = v - 1
            """
        )

    def test_await_in_only_one_branch_still_flags(self):
        # May-analysis: the suspending path makes the write unsafe.
        assert "ASY001" in rules_of(
            """
            import asyncio

            class P:
                async def f(self, fast):
                    v = self.slots
                    if not fast:
                        await asyncio.sleep(0)
                    self.slots = v - 1
            """
        )

    def test_staleness_survives_a_loop_back_edge(self):
        assert "ASY001" in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    v = self.slots
                    for _ in range(3):
                        await asyncio.sleep(0)
                    self.slots = v - 1
            """
        )

    def test_async_for_header_is_a_suspension(self):
        assert "ASY001" in rules_of(
            """
            class P:
                async def f(self, src):
                    v = self.total
                    async for item in src:
                        pass
                    self.total = v + 1
            """
        )

    def test_taint_flows_through_arithmetic(self):
        assert "ASY001" in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    doubled = self.count * 2
                    await asyncio.sleep(0)
                    self.count = doubled + 1
            """
        )

    def test_fresh_call_result_is_untainted(self):
        assert "ASY001" not in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    v = self.compute()
                    await asyncio.sleep(0)
                    self.result = v
            """
        )

    def test_write_to_different_attribute_is_clean(self):
        # Staleness is per-location: writing b from a stale read of a
        # is not the read-modify-write shape.
        assert "ASY001" not in rules_of(
            """
            import asyncio

            class P:
                async def f(self):
                    v = self.a
                    await asyncio.sleep(0)
                    self.b = v
            """
        )

    def test_local_only_state_is_ignored(self):
        assert "ASY001" not in rules_of(
            """
            import asyncio

            async def f():
                local = {"k": 1}
                v = local["k"]
                await asyncio.sleep(0)
                local["k"] = v + 1
            """
        )

    def test_sync_methods_are_ignored(self):
        assert "ASY001" not in rules_of(
            """
            class P:
                def f(self):
                    v = self.slots
                    self.slots = v - 1
            """
        )


class TestAsy002:
    def test_underscore_assignment_is_still_dropping(self):
        assert "ASY002" in rules_of(
            """
            import asyncio

            async def f(work):
                _ = asyncio.create_task(work())
            """
        )

    def test_retained_handle_is_clean(self):
        assert "ASY002" not in rules_of(
            """
            import asyncio

            async def f(work, registry):
                t = asyncio.create_task(work())
                registry.add(t)
                await t
            """
        )

    def test_supervisor_spawn_is_clean(self):
        assert "ASY002" not in rules_of(
            """
            async def f(supervisor, work):
                supervisor.spawn(work())
            """
        )


class TestAsy003:
    def test_wait_for_wrapping_is_clean(self):
        assert "ASY003" not in rules_of(
            """
            import asyncio

            async def f(reader):
                return await asyncio.wait_for(reader.read(1), timeout=1.0)
            """
        )

    def test_timeout_context_bounds_everything_inside(self):
        assert "ASY003" not in rules_of(
            """
            import asyncio

            async def f(reader, writer):
                async with asyncio.timeout(2.0):
                    await writer.drain()
                    return await reader.read(1)
            """
        )

    def test_bare_network_await_is_flagged(self):
        assert "ASY003" in rules_of(
            """
            async def f(writer):
                await writer.drain()
            """
        )

    def test_event_wait_is_not_a_network_await(self):
        # Parking on an Event is deliberate backpressure, not a peer.
        assert "ASY003" not in rules_of(
            """
            async def f(event):
                await event.wait()
            """
        )

    def test_timeout_scope_does_not_leak_to_siblings(self):
        findings = run(
            """
            import asyncio

            async def f(reader):
                async with asyncio.timeout(2.0):
                    await reader.read(1)
                await reader.read(1)
            """
        )
        asy3 = [line for rule, line in findings if rule == "ASY003"]
        assert len(asy3) == 1  # only the await outside the scope


class TestAsy004:
    def test_sync_helper_nested_in_async_is_clean(self):
        assert "ASY004" not in rules_of(
            """
            import time

            async def f():
                def helper():
                    time.sleep(1)
                return helper
            """
        )

    def test_blocking_sleep_in_async_is_flagged(self):
        assert "ASY004" in rules_of(
            """
            import time

            async def f():
                time.sleep(1)
            """
        )


class TestAsy005:
    def test_tuple_catch_is_flagged(self):
        assert "ASY005" in rules_of(
            """
            import asyncio

            async def f(q):
                try:
                    await q.get()
                except (ValueError, asyncio.CancelledError):
                    pass
            """
        )

    def test_reraise_is_clean(self):
        assert "ASY005" not in rules_of(
            """
            import asyncio

            async def f(q, w):
                try:
                    await q.get()
                except asyncio.CancelledError:
                    w.close()
                    raise
            """
        )

    def test_bare_except_is_not_asy005(self):
        # Bare except is ERR002's finding, not a cancellation-specific one.
        assert "ASY005" not in rules_of(
            """
            async def f(q):
                try:
                    await q.get()
                except Exception:
                    pass
            """
        )


class TestWaiverIntegration:
    def test_noqa_waives_an_asy_finding(self):
        assert "ASY003" not in rules_of(
            """
            async def f(writer):
                await writer.drain()  # repro: noqa[ASY003] -- test waiver
            """
        )

    def test_stale_asy_waiver_is_reported(self):
        findings = run(
            """
            import asyncio

            async def f():
                await asyncio.sleep(0)  # repro: noqa[ASY003] -- stale
            """
        )
        assert ("SUP001", 5) in findings
