"""The forward-dataflow framework: joins, fixpoints, and the
non-convergence guard."""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg, iter_function_defs
from repro.analysis.dataflow import (
    MAX_VISITS_PER_BLOCK,
    DataflowResult,
    ForwardAnalysis,
    run_forward,
)
from repro.errors import AnalysisError


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    (_name, func), *_ = list(iter_function_defs(tree))
    return build_cfg(func)


class AssignedNames(ForwardAnalysis):
    """May-analysis: the set of names assigned on some path."""

    def initial(self, cfg):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, block, state):
        names = set(state)
        for stmt in block.stmts:
            if isinstance(stmt, ast.Assign):
                names.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                )
        return frozenset(names)


def exit_state(cfg, analysis):
    result = run_forward(analysis, cfg)
    assert isinstance(result, DataflowResult)
    return result.state_in(cfg.exit)


class TestFixpoint:
    def test_straight_line_accumulates(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
            """
        )
        assert exit_state(cfg, AssignedNames()) == {"a", "b"}

    def test_diamond_joins_both_branches(self):
        cfg = cfg_of(
            """
            def f():
                if cond:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        # May-analysis: the join sees assignments from both arms.
        assert exit_state(cfg, AssignedNames()) == {"a", "b", "c"}

    def test_loop_body_flows_through_back_edge(self):
        cfg = cfg_of(
            """
            def f():
                while cond:
                    a = 1
                b = 2
            """
        )
        assert exit_state(cfg, AssignedNames()) == {"a", "b"}

    def test_dead_code_still_gets_states(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                a = 2
            """
        )
        result = run_forward(AssignedNames(), cfg)
        for block in cfg.blocks:
            result.state_in(block.id)
            result.state_out(block.id)  # no KeyError on unreachable blocks

    def test_exception_edge_reaches_handler_without_late_body(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    c = 3
            """
        )
        # The handler may run before b's assignment, but a may-analysis
        # over conservative edges still unions everything at the exit.
        assert exit_state(cfg, AssignedNames()) >= {"a", "c"}


class NonMonotone(ForwardAnalysis):
    """A broken client whose state never stabilizes."""

    def initial(self, cfg):
        return 0

    def join(self, left, right):
        return max(left, right)

    def transfer(self, block, state):
        return state + 1  # grows forever


class TestConvergenceGuard:
    def test_non_monotone_client_raises_analysis_error(self):
        cfg = cfg_of(
            """
            def f():
                while cond:
                    a = 1
            """
        )
        with pytest.raises(AnalysisError):
            run_forward(NonMonotone(), cfg)

    def test_bound_is_generous_for_honest_clients(self):
        # A deep chain of branches converges in far fewer visits than
        # the guard allows.
        body = "\n".join(
            f"    if c{i}:\n        a{i} = {i}" for i in range(20)
        )
        cfg = cfg_of(f"def f():\n{body}\n")
        names = exit_state(cfg, AssignedNames())
        assert names == {f"a{i}" for i in range(20)}
        assert MAX_VISITS_PER_BLOCK >= 8
