"""Output renderers: text, JSON, GitHub annotations."""

import json

from repro.analysis import analyze_source
from repro.analysis.output import render_github, render_json, render_text
from repro.analysis.findings import Finding, Severity


def findings():
    return analyze_source(
        "raise ValueError('x')\n", "pkg/mod.py", "experiments/mod.py"
    )


def test_text_format():
    text = render_text(findings())
    assert "pkg/mod.py:1:0: ERR001 [error]" in text


def test_json_format_is_machine_readable():
    rows = json.loads(render_json(findings()))
    assert rows[0]["rule"] == "ERR001"
    assert rows[0]["path"] == "pkg/mod.py"
    assert rows[0]["line"] == 1
    assert rows[0]["severity"] == "error"
    assert len(rows[0]["fingerprint"]) == 16


def test_github_format_emits_workflow_commands():
    out = render_github(findings())
    assert out.startswith("::error file=pkg/mod.py,line=1,col=1,title=ERR001::")


def test_github_escapes_newlines_and_percent():
    finding = Finding(
        path="a.py", line=1, col=0, rule="X001",
        severity=Severity.WARNING, message="50% broken\nbadly",
    )
    out = render_github([finding])
    assert "\n" not in out
    assert "%0A" in out and "%25" in out
    assert out.startswith("::warning ")


def test_empty_renders_empty():
    assert render_text([]) == ""
    assert json.loads(render_json([])) == []
    assert render_github([]) == ""
