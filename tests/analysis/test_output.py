"""Output renderers: text, JSON, GitHub annotations, SARIF."""

import json

from repro.analysis import analyze_source
from repro.analysis.output import (
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES


def findings():
    return analyze_source(
        "raise ValueError('x')\n", "pkg/mod.py", "experiments/mod.py"
    )


def test_text_format():
    text = render_text(findings())
    assert "pkg/mod.py:1:0: ERR001 [error]" in text


def test_json_format_is_machine_readable():
    rows = json.loads(render_json(findings()))
    assert rows[0]["rule"] == "ERR001"
    assert rows[0]["path"] == "pkg/mod.py"
    assert rows[0]["line"] == 1
    assert rows[0]["severity"] == "error"
    assert len(rows[0]["fingerprint"]) == 16


def test_github_format_emits_workflow_commands():
    out = render_github(findings())
    assert out.startswith("::error file=pkg/mod.py,line=1,col=1,title=ERR001::")


def test_github_escapes_newlines_and_percent():
    finding = Finding(
        path="a.py", line=1, col=0, rule="X001",
        severity=Severity.WARNING, message="50% broken\nbadly",
    )
    out = render_github([finding])
    assert "\n" not in out
    assert "%0A" in out and "%25" in out
    assert out.startswith("::warning ")


def test_empty_renders_empty():
    assert render_text([]) == ""
    assert json.loads(render_json([])) == []
    assert render_github([]) == ""


class TestSarif:
    def test_log_shape(self):
        log = json.loads(render_sarif(findings()))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        (result,) = run["results"]
        assert result["ruleId"] == "ERR001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] == 1  # SARIF columns are 1-based

    def test_every_registered_rule_is_described(self):
        log = json.loads(render_sarif([]))
        described = {
            r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert described >= set(RULES)
        assert {"E000", "SUP001"} <= described  # engine pseudo-rules too

    def test_fingerprint_matches_engine_fingerprint(self):
        (finding,) = findings()
        log = json.loads(render_sarif([finding]))
        (result,) = log["runs"][0]["results"]
        assert (
            result["partialFingerprints"]["reproAnalyze/v1"]
            == finding.fingerprint()
        )

    def test_empty_findings_render_valid_empty_run(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []
