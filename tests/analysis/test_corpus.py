"""Self-test corpus: every rule must catch its bad snippet and pass its
good snippet, so the rules themselves are regression-tested."""

from pathlib import Path

import pytest

from repro.analysis import RULES, UNUSED_SUPPRESSION_RULE, analyze_file

CORPUS = Path(__file__).parent / "corpus"
RULE_DIRS = sorted(p for p in CORPUS.iterdir() if p.is_dir())


def test_corpus_covers_every_rule():
    expected = set(RULES) | {UNUSED_SUPPRESSION_RULE}
    assert {p.name for p in RULE_DIRS} == expected


@pytest.mark.parametrize("rule_dir", RULE_DIRS, ids=lambda p: p.name)
def test_every_rule_has_good_and_bad_fixtures(rule_dir):
    assert list(rule_dir.glob("bad_*.py")), f"{rule_dir.name} has no bad fixture"
    assert list(rule_dir.glob("good_*.py")), f"{rule_dir.name} has no good fixture"


@pytest.mark.parametrize("rule_dir", RULE_DIRS, ids=lambda p: p.name)
def test_bad_fixtures_are_flagged(rule_dir):
    for bad in sorted(rule_dir.glob("bad_*.py")):
        findings = analyze_file(bad)
        rules_hit = {f.rule for f in findings}
        assert rule_dir.name in rules_hit, (
            f"{bad} should trigger {rule_dir.name}, got {rules_hit or 'nothing'}"
        )


@pytest.mark.parametrize("rule_dir", RULE_DIRS, ids=lambda p: p.name)
def test_good_fixtures_are_clean(rule_dir):
    for good in sorted(rule_dir.glob("good_*.py")):
        findings = analyze_file(good)
        assert not findings, (
            f"{good} should be clean, got: "
            + "; ".join(f"{f.rule}@{f.line} {f.message}" for f in findings)
        )


def test_bad_fixtures_carry_module_path_pragma():
    """Scoped rules only fire because fixtures declare their location."""
    for rule_dir in RULE_DIRS:
        for fixture in sorted(rule_dir.glob("*.py")):
            head = fixture.read_text().splitlines()[0]
            assert "repro: module-path=" in head, fixture
