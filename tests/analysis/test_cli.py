"""End-to-end `python -m repro analyze` behavior and the repo gate."""

import json
import subprocess
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def test_repo_tree_is_clean(capsys):
    """The headline gate: the whole src tree has zero findings."""
    code, out = run(["analyze", str(REPO / "src")], capsys)
    assert code == 0, out
    assert "no findings" in out


def test_bad_corpus_fails(capsys):
    code, out = run(["analyze", str(CORPUS)], capsys)
    assert code == 1
    assert "ERR001" in out


def test_single_good_fixture_passes(capsys):
    good = next(CORPUS.glob("*/good_*.py"))
    code, _ = run(["analyze", str(good)], capsys)
    assert code == 0


def test_json_output(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--format", "json"], capsys)
    assert code == 1
    rows = json.loads(out)
    assert any(r["rule"] == "ERR001" for r in rows)


def test_github_output(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--format", "github"], capsys)
    assert code == 1
    assert out.startswith("::error ")


def test_select_and_ignore(capsys):
    bad = str(CORPUS / "SIM001" / "bad_blocking_io.py")
    code, _ = run(["analyze", bad, "--select", "UNI001"], capsys)
    assert code == 0
    code, _ = run(["analyze", bad, "--ignore", "SIM001"], capsys)
    assert code == 0


def test_statistics_flag(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--statistics"], capsys)
    assert code == 1
    assert "total" in out


def test_baseline_workflow(tmp_path, capsys):
    """--write-baseline grandfathers findings; the next run passes."""
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    baseline = tmp_path / "baseline.json"
    code, _ = run(
        ["analyze", bad, "--baseline", str(baseline), "--write-baseline"],
        capsys,
    )
    assert code == 0
    assert baseline.exists()
    code, _ = run(["analyze", bad, "--baseline", str(baseline)], capsys)
    assert code == 0
    # Without the baseline the finding still fails the gate.
    code, _ = run(["analyze", bad], capsys)
    assert code == 1


def test_stale_waiver_fails_even_with_baseline(tmp_path, capsys):
    """SUP001 is exempt from grandfathering: a stale waiver always
    fails, so the waiver inventory cannot rot behind a baseline."""
    stale = tmp_path / "stale.py"
    stale.write_text("x = 1  # repro: noqa[ERR001] -- nothing raises\n")
    baseline = tmp_path / "baseline.json"
    code, _ = run(
        ["analyze", str(stale), "--baseline", str(baseline),
         "--write-baseline"],
        capsys,
    )
    assert code == 0
    code, out = run(
        ["analyze", str(stale), "--baseline", str(baseline)], capsys
    )
    assert code == 1
    assert "SUP001" in out


def test_sarif_output(capsys):
    bad = str(CORPUS / "ASY003" / "bad_unbounded_network.py")
    code, out = run(["analyze", bad, "--format", "sarif"], capsys)
    assert code == 1
    log = json.loads(out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert any(r["ruleId"] == "ASY003" for r in results)


def test_changed_mode_end_to_end(tmp_path, capsys, monkeypatch):
    def git(*args):
        subprocess.run(
            ["git", "-c", "user.email=t@example.invalid",
             "-c", "user.name=t", *args],
            cwd=tmp_path, check=True, capture_output=True,
        )

    git("init", "-b", "main")
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    git("add", "-A")
    git("commit", "-m", "seed")
    monkeypatch.chdir(tmp_path)

    # Nothing changed: the run is a no-op success.
    code, out = run(["analyze", str(tmp_path), "--changed", "main"], capsys)
    assert code == 0
    assert "no changed python files" in out

    # An untracked bad file is picked up; the committed one is not.
    bad = tmp_path / "bad.py"
    bad.write_text("raise ValueError('x')\n")
    code, out = run(["analyze", str(tmp_path), "--changed", "main"], capsys)
    assert code == 1
    assert "bad.py" in out and "clean.py" not in out
