"""End-to-end `python -m repro analyze` behavior and the repo gate."""

import json
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
CORPUS = Path(__file__).parent / "corpus"


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def test_repo_tree_is_clean(capsys):
    """The headline gate: the whole src tree has zero findings."""
    code, out = run(["analyze", str(REPO / "src")], capsys)
    assert code == 0, out
    assert "no findings" in out


def test_bad_corpus_fails(capsys):
    code, out = run(["analyze", str(CORPUS)], capsys)
    assert code == 1
    assert "ERR001" in out


def test_single_good_fixture_passes(capsys):
    good = next(CORPUS.glob("*/good_*.py"))
    code, _ = run(["analyze", str(good)], capsys)
    assert code == 0


def test_json_output(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--format", "json"], capsys)
    assert code == 1
    rows = json.loads(out)
    assert any(r["rule"] == "ERR001" for r in rows)


def test_github_output(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--format", "github"], capsys)
    assert code == 1
    assert out.startswith("::error ")


def test_select_and_ignore(capsys):
    bad = str(CORPUS / "SIM001" / "bad_blocking_io.py")
    code, _ = run(["analyze", bad, "--select", "UNI001"], capsys)
    assert code == 0
    code, _ = run(["analyze", bad, "--ignore", "SIM001"], capsys)
    assert code == 0


def test_statistics_flag(capsys):
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    code, out = run(["analyze", bad, "--statistics"], capsys)
    assert code == 1
    assert "total" in out


def test_baseline_workflow(tmp_path, capsys):
    """--write-baseline grandfathers findings; the next run passes."""
    bad = str(CORPUS / "ERR001" / "bad_generic_raise.py")
    baseline = tmp_path / "baseline.json"
    code, _ = run(
        ["analyze", bad, "--baseline", str(baseline), "--write-baseline"],
        capsys,
    )
    assert code == 0
    assert baseline.exists()
    code, _ = run(["analyze", bad, "--baseline", str(baseline)], capsys)
    assert code == 0
    # Without the baseline the finding still fails the gate.
    code, _ = run(["analyze", bad], capsys)
    assert code == 1
