"""Unit tests for addresses and the packet model."""

import pytest

from repro.errors import AddressError, NetworkError
from repro.net.addr import BROADCAST_IP, Endpoint, FlowKey
from repro.net.packet import (
    IP_HEADER,
    LINK_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    Packet,
    TcpFlags,
)


def make_packet(**overrides):
    defaults = dict(
        proto="udp",
        src=Endpoint("10.0.0.1", 5000),
        dst=Endpoint("10.0.0.2", 6000),
        payload_size=100,
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestEndpoint:
    def test_requires_nonempty_ip(self):
        with pytest.raises(AddressError):
            Endpoint("", 80)

    @pytest.mark.parametrize("port", [0, -1, 65536])
    def test_rejects_bad_ports(self, port):
        with pytest.raises(AddressError):
            Endpoint("10.0.0.1", port)

    def test_equality_and_hash(self):
        assert Endpoint("10.0.0.1", 80) == Endpoint("10.0.0.1", 80)
        assert len({Endpoint("10.0.0.1", 80), Endpoint("10.0.0.1", 80)}) == 1


class TestFlowKey:
    def test_reversed_swaps_endpoints(self):
        flow = FlowKey("tcp", Endpoint("a", 1), Endpoint("b", 2))
        rev = flow.reversed()
        assert rev.src == flow.dst and rev.dst == flow.src
        assert rev.reversed() == flow


class TestPacket:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(NetworkError):
            make_packet(proto="icmp")

    def test_rejects_negative_payload(self):
        with pytest.raises(NetworkError):
            make_packet(payload_size=-1)

    def test_udp_sizes(self):
        packet = make_packet(payload_size=100)
        assert packet.ip_size == IP_HEADER + UDP_HEADER + 100
        assert packet.wire_size == LINK_HEADER + packet.ip_size

    def test_tcp_sizes(self):
        packet = make_packet(proto="tcp", payload_size=100)
        assert packet.ip_size == IP_HEADER + TCP_HEADER + 100

    def test_broadcast_detection(self):
        packet = make_packet(dst=Endpoint(BROADCAST_IP, 7000))
        assert packet.is_broadcast
        assert not make_packet().is_broadcast

    def test_end_seq(self):
        packet = make_packet(proto="tcp", seq=1000, payload_size=500)
        assert packet.end_seq == 1500

    def test_spoofed_copy_rewrites_addresses(self):
        packet = make_packet(tos_marked=True, meta={"k": "v"})
        spoofed = packet.spoofed(src=Endpoint("99.0.0.1", 1234))
        assert spoofed.src == Endpoint("99.0.0.1", 1234)
        assert spoofed.dst == packet.dst
        assert spoofed.tos_marked
        assert spoofed.meta == {"k": "v"}
        assert spoofed.meta is not packet.meta
        assert spoofed.packet_id != packet.packet_id

    def test_packet_ids_unique(self):
        assert make_packet().packet_id != make_packet().packet_id

    def test_flow_key_matches_addresses(self):
        packet = make_packet()
        assert packet.flow == FlowKey("udp", packet.src, packet.dst)

    def test_tcp_flags_combine(self):
        flags = TcpFlags.SYN | TcpFlags.ACK
        assert TcpFlags.SYN in flags
        assert TcpFlags.FIN not in flags
