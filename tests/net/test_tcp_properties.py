"""Property-based tests for TCP: reliable in-order delivery under loss."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import Endpoint
from repro.net.tcp import TcpConnection, TcpListener

from tests.net.helpers import wire_pair


@given(
    total_bytes=st.integers(min_value=1, max_value=300_000),
    loss_rate=st.floats(min_value=0.0, max_value=0.15),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_tcp_delivers_exact_byte_count_under_loss(total_bytes, loss_rate, seed):
    rng = np.random.default_rng(seed)

    def lossy(packet):
        return bool(rng.random() < loss_rate)

    sim, a, b, _ = wire_pair(drop=lossy if loss_rate > 0 else None)

    def on_accept(conn):
        def on_established(c):
            c.send(total_bytes)
            c.close()

        conn.on_established = on_established

    TcpListener(b, 80, on_accept)
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    sim.run(until=600.0)
    assert client.bytes_delivered == total_bytes


@given(
    chunks=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=20),
)
@settings(max_examples=25, deadline=None)
def test_tcp_delivery_is_cumulative_and_monotone(chunks):
    sim, a, b, _ = wire_pair()
    deliveries = []

    def on_accept(conn):
        conn.on_data = lambda n, p: deliveries.append(n)

    TcpListener(b, 80, on_accept)
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))

    def sender():
        yield sim.timeout(0.5)
        for chunk in chunks:
            client.send(chunk)
            yield sim.timeout(0.01)

    sim.process(sender())
    sim.run(until=120.0)
    assert sum(deliveries) == sum(chunks)
    assert all(n > 0 for n in deliveries)
