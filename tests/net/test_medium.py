"""Unit tests for the shared wireless medium."""

import pytest

from repro.errors import NetworkError
from repro.net.addr import BROADCAST_IP, Endpoint
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator, TraceRecorder
from repro.units import mbps

from tests.net.helpers import wireless_cell


def test_unicast_reaches_addressed_station_only():
    sim, medium, gateway, clients = wireless_cell(n_clients=3)
    hits = []
    for client in clients:
        UdpSocket(client, 7000, on_receive=lambda p, c=client: hits.append(c.name))
    gw_socket = UdpSocket(gateway, 5000)
    gw_socket.sendto(500, Endpoint(clients[1].ip, 7000))
    sim.run()
    assert hits == ["c1"]


def test_broadcast_reaches_every_station():
    sim, medium, gateway, clients = wireless_cell(n_clients=3)
    hits = []
    for client in clients:
        UdpSocket(client, 7000, on_receive=lambda p, c=client: hits.append(c.name))
    UdpSocket(gateway, 5000).broadcast(100, 7000)
    sim.run()
    assert sorted(hits) == ["c0", "c1", "c2"]


def test_half_duplex_serializes_transmissions():
    sim, medium, gateway, clients = wireless_cell(n_clients=2)
    times = []
    for client in clients:
        UdpSocket(client, 7000, on_receive=lambda p: times.append(sim.now))
    sender = UdpSocket(gateway, 5000)
    sender.sendto(1000, Endpoint(clients[0].ip, 7000))
    sender.sendto(1000, Endpoint(clients[1].ip, 7000))
    sim.run()
    airtime = medium.airtime(1000 + 62)
    assert times == pytest.approx([airtime, 2 * airtime])


def test_frames_not_for_stations_go_to_gateway():
    sim, medium, gateway, clients = wireless_cell(n_clients=1)
    heard = []
    gateway.taps.append(lambda p, i: (heard.append(p.dst.ip), True)[1])
    UdpSocket(clients[0], 5000).sendto(100, Endpoint("192.168.7.7", 80))
    sim.run()
    assert heard == ["192.168.7.7"]


def test_sender_does_not_hear_its_own_frame():
    sim, medium, gateway, clients = wireless_cell(n_clients=1)
    hits = []
    UdpSocket(gateway, 7000, on_receive=lambda p: hits.append("gw"))
    # gateway sends a broadcast; only the client may hear it
    UdpSocket(clients[0], 7000, on_receive=lambda p: hits.append("client"))
    UdpSocket(gateway, 5000).broadcast(100, 7000)
    sim.run()
    assert hits == ["client"]


def test_rx_gate_blocks_and_records_miss():
    trace = TraceRecorder()
    sim, medium, gateway, clients = wireless_cell(n_clients=1, trace=trace)
    client = clients[0]
    client.interfaces["wl0"].rx_gate = lambda packet: False  # asleep
    received = []
    UdpSocket(client, 7000, on_receive=lambda p: received.append(p))
    UdpSocket(gateway, 5000).sendto(500, Endpoint(client.ip, 7000))
    sim.run()
    assert received == []
    assert medium.frames_missed == 1
    misses = list(trace.query("medium.miss"))
    assert len(misses) == 1
    assert misses[0].fields["dst"] == client.ip


def test_missed_unicast_does_not_leak_to_gateway():
    sim, medium, gateway, clients = wireless_cell(n_clients=1)
    clients[0].interfaces["wl0"].rx_gate = lambda packet: False
    leaked = []
    gateway.taps.append(lambda p, i: (leaked.append(p), True)[1])
    UdpSocket(gateway, 5000).sendto(100, Endpoint(clients[0].ip, 7000))
    sim.run()
    assert leaked == []


def test_effective_rate_below_nominal():
    medium = WirelessMedium(Simulator(), rate_bps=mbps(11))
    effective = medium.effective_rate_bps()
    assert mbps(3) < effective < mbps(8)


def test_backoff_uses_rng_and_stays_bounded():
    rng = RngStreams(seed=5).get("medium")
    sim, medium, gateway, clients = wireless_cell(n_clients=1, rng=rng)
    times = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: times.append(sim.now))
    sender = UdpSocket(gateway, 5000)
    for seq in range(10):
        sender.sendto(1000, Endpoint(clients[0].ip, 7000), seq=seq)
    sim.run()
    base = medium.airtime(1000 + 62)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(base <= gap <= base + medium.max_backoff_s for gap in gaps)


def test_channel_drop_hook():
    trace = TraceRecorder()
    sim, medium, gateway, clients = wireless_cell(
        n_clients=1, trace=trace, drop=lambda p: True
    )
    received = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: received.append(p))
    UdpSocket(gateway, 5000).sendto(100, Endpoint(clients[0].ip, 7000))
    sim.run()
    assert received == []
    assert trace.count("medium.drop.channel") == 1
    assert medium.frames_sent == 0


def test_attach_two_gateways_rejected():
    sim, medium, gateway, clients = wireless_cell(n_clients=1)
    other = Node(sim, "gw2", "10.0.0.253")
    with pytest.raises(NetworkError):
        medium.attach(other.add_interface("wl0"), gateway=True)


def test_frame_trace_records_timing_and_sizes():
    trace = TraceRecorder()
    sim, medium, gateway, clients = wireless_cell(n_clients=1, trace=trace)
    UdpSocket(clients[0], 7000)
    UdpSocket(gateway, 5000).sendto(400, Endpoint(clients[0].ip, 7000))
    sim.run()
    frames = list(trace.query("medium.frame"))
    assert len(frames) == 1
    fields = frames[0].fields
    assert fields["payload"] == 400
    assert fields["end"] - fields["start"] == pytest.approx(
        medium.airtime(400 + 62)
    )
