"""Unit tests for SpoofTable, DummyNetPipe and MonitoringStation."""

import pytest

from repro.errors import NetworkError
from repro.net.addr import Endpoint, FlowKey
from repro.net.nat import SpoofTable
from repro.net.packet import Packet
from repro.net.shaper import DummyNetPipe
from repro.net.sniffer import MonitoringStation
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator
from repro.units import mbps, ms

from tests.net.helpers import wireless_cell


CLIENT = Endpoint("10.0.1.1", 4000)
SERVER = Endpoint("10.0.2.1", 80)
PROXY = Endpoint("10.0.0.9", 8080)


class TestSpoofTable:
    def test_rewrite_matching_flow(self):
        table = SpoofTable()
        table.add_rule(
            FlowKey("tcp", CLIENT, SERVER), new_dst=PROXY
        )
        packet = Packet("tcp", CLIENT, SERVER, payload_size=10)
        rewritten = table.rewrite(packet)
        assert rewritten is not None
        assert rewritten.dst == PROXY
        assert rewritten.src == CLIENT
        assert table.rewrites == 1

    def test_no_rule_returns_none(self):
        table = SpoofTable()
        packet = Packet("tcp", CLIENT, SERVER)
        assert table.rewrite(packet) is None

    def test_rule_must_rewrite_something(self):
        with pytest.raises(NetworkError):
            SpoofTable().add_rule(FlowKey("tcp", CLIENT, SERVER))

    def test_duplicate_rule_rejected(self):
        table = SpoofTable()
        table.add_rule(FlowKey("tcp", CLIENT, SERVER), new_dst=PROXY)
        with pytest.raises(NetworkError):
            table.add_rule(FlowKey("tcp", CLIENT, SERVER), new_src=PROXY)

    def test_remove_flow_is_idempotent(self):
        table = SpoofTable()
        flow = FlowKey("tcp", CLIENT, SERVER)
        table.add_rule(flow, new_dst=PROXY)
        table.remove_flow(flow)
        table.remove_flow(flow)
        assert len(table) == 0

    def test_directionality(self):
        """A rule for one direction does not affect the reverse."""
        table = SpoofTable()
        table.add_rule(FlowKey("udp", SERVER, CLIENT), new_src=PROXY)
        reverse = Packet("udp", CLIENT, SERVER)
        assert table.rewrite(reverse) is None


class TestDummyNetPipe:
    def test_paper_configuration(self):
        """4 Mb/s, 2 ms RTT, 5% drop — the paper's §4.3 experiment."""
        from repro.net.node import Node

        sim = Simulator()
        rng = RngStreams(seed=11).get("dummynet")
        pipe = DummyNetPipe(sim, bandwidth_bps=mbps(4), delay_s=ms(1), plr=0.05, rng=rng)
        a = Node(sim, "a", "10.0.0.1")
        b = Node(sim, "b", "10.0.0.2")
        pipe.attach(a.add_interface("e"), b.add_interface("e"))
        a.set_default_route(a.interfaces["e"])
        b.set_default_route(b.interfaces["e"])
        received = []
        UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        sender = UdpSocket(a, 5000)
        n = 2000
        for seq in range(n):
            sender.sendto(1000, Endpoint("10.0.0.2", 7000), seq=seq)
        sim.run()
        loss = 1.0 - len(received) / n
        assert 0.03 < loss < 0.07

    def test_invalid_plr_rejected(self):
        with pytest.raises(NetworkError):
            DummyNetPipe(Simulator(), mbps(4), plr=1.5)

    def test_plr_without_rng_rejected(self):
        with pytest.raises(NetworkError):
            DummyNetPipe(Simulator(), mbps(4), plr=0.05)

    def test_zero_plr_never_drops(self):
        from repro.net.node import Node

        sim = Simulator()
        pipe = DummyNetPipe(sim, bandwidth_bps=mbps(4))
        a = Node(sim, "a", "10.0.0.1")
        b = Node(sim, "b", "10.0.0.2")
        pipe.attach(a.add_interface("e"), b.add_interface("e"))
        a.set_default_route(a.interfaces["e"])
        received = []
        UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        sender = UdpSocket(a, 5000)
        for seq in range(100):
            sender.sendto(500, Endpoint("10.0.0.2", 7000), seq=seq)
        sim.run()
        assert len(received) == 100


class TestMonitoringStation:
    def test_hears_unicast_and_broadcast(self):
        sim, medium, gateway, clients = wireless_cell(n_clients=2)
        monitor = MonitoringStation(sim)
        monitor.attach_to(medium)
        UdpSocket(clients[0], 7000)
        sender = UdpSocket(gateway, 5000)
        sender.sendto(100, Endpoint(clients[0].ip, 7000))
        sender.broadcast(50, 7000)
        sim.run()
        assert len(monitor.frames) == 2
        assert monitor.frames[0].dst_ip == clients[0].ip
        assert monitor.frames[1].broadcast

    def test_hears_frames_for_sleeping_clients(self):
        """The monitor's capture is independent of client WNIC state."""
        sim, medium, gateway, clients = wireless_cell(n_clients=1)
        clients[0].interfaces["wl0"].rx_gate = lambda p: False
        monitor = MonitoringStation(sim)
        monitor.attach_to(medium)
        UdpSocket(gateway, 5000).sendto(100, Endpoint(clients[0].ip, 7000))
        sim.run()
        assert len(monitor.frames) == 1

    def test_frame_airtime_bracket(self):
        sim, medium, gateway, clients = wireless_cell(n_clients=1)
        monitor = MonitoringStation(sim)
        monitor.attach_to(medium)
        UdpSocket(clients[0], 7000)
        UdpSocket(gateway, 5000).sendto(1000, Endpoint(clients[0].ip, 7000))
        sim.run()
        frame = monitor.frames[0]
        assert frame.end - frame.start == pytest.approx(
            medium.airtime(frame.wire_size)
        )

    def test_filters(self):
        sim, medium, gateway, clients = wireless_cell(n_clients=2)
        monitor = MonitoringStation(sim)
        monitor.attach_to(medium)
        UdpSocket(clients[0], 7000)
        UdpSocket(clients[1], 7000)
        sender = UdpSocket(gateway, 5000)
        sender.sendto(10, Endpoint(clients[0].ip, 7000))
        sender.sendto(10, Endpoint(clients[1].ip, 7000))
        sim.run()
        assert len(list(monitor.frames_to(clients[0].ip))) == 1
        assert len(list(monitor.frames_from(gateway.ip))) == 2
        assert monitor.bytes_captured() > 0

    def test_monitor_never_transmits(self):
        sim, medium, gateway, clients = wireless_cell(n_clients=1)
        monitor = MonitoringStation(sim)
        monitor.attach_to(medium)
        UdpSocket(clients[0], 7000)
        UdpSocket(gateway, 5000).sendto(10, Endpoint(clients[0].ip, 7000))
        sim.run()
        assert monitor.packets_sent == 0
