"""Unit tests for the simplified TCP implementation."""

import pytest

from repro.errors import SocketError
from repro.net.addr import Endpoint
from repro.net.packet import MSS, TcpFlags
from repro.net.tcp import (
    CLOSED,
    ESTABLISHED,
    TcpConnection,
    TcpListener,
)
from repro.net.udp import UdpSocket
from repro.sim import Simulator
from repro.units import mbps, ms

from tests.net.helpers import wire_pair


def make_server(node, port=80, response_bytes=0):
    """A listener that optionally sends ``response_bytes`` then closes."""
    accepted = []

    def on_accept(conn):
        accepted.append(conn)
        if response_bytes:
            def on_established(c):
                c.send(response_bytes)
                c.close()
            conn.on_established = on_established

    TcpListener(node, port, on_accept)
    return accepted


class TestHandshake:
    def test_three_way_handshake_establishes_both_ends(self):
        sim, a, b, _ = wire_pair()
        accepted = make_server(b)
        established = []
        client = TcpConnection.connect(
            a, Endpoint("10.0.0.2", 80),
            on_established=lambda c: established.append(sim.now),
        )
        sim.run()
        assert client.state == ESTABLISHED
        assert len(accepted) == 1
        assert accepted[0].state == ESTABLISHED
        assert established and established[0] > 0

    def test_lost_syn_is_retransmitted(self):
        state = {"dropped": False}

        def drop_first_syn(packet):
            if (
                packet.proto == "tcp"
                and TcpFlags.SYN in packet.flags
                and TcpFlags.ACK not in packet.flags
                and not state["dropped"]
            ):
                state["dropped"] = True
                return True
            return False

        sim, a, b, _ = wire_pair(drop=drop_first_syn)
        make_server(b)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=10.0)
        assert client.state == ESTABLISHED
        assert state["dropped"]

    def test_lost_syn_ack_recovers(self):
        state = {"dropped": False}

        def drop_first_synack(packet):
            if (
                packet.proto == "tcp"
                and TcpFlags.SYN in packet.flags
                and TcpFlags.ACK in packet.flags
                and not state["dropped"]
            ):
                state["dropped"] = True
                return True
            return False

        sim, a, b, _ = wire_pair(drop=drop_first_synack)
        accepted = make_server(b)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=10.0)
        assert client.state == ESTABLISHED
        assert accepted[0].state == ESTABLISHED


class TestDataTransfer:
    def test_small_transfer_delivers_exact_bytes(self):
        sim, a, b, _ = wire_pair()
        make_server(b, response_bytes=10_000)
        delivered = []
        client = TcpConnection.connect(
            a, Endpoint("10.0.0.2", 80),
            on_data=lambda n, p: delivered.append(n),
        )
        sim.run(until=30.0)
        assert sum(delivered) == 10_000
        assert client.bytes_delivered == 10_000

    def test_large_transfer_is_segmented_at_mss(self):
        sim, a, b, _ = wire_pair()
        sizes = []
        make_server(b, response_bytes=100_000)
        a_tap_added = a.taps.append(
            lambda p, i: (
                sizes.append(p.payload_size) if p.payload_size > 0 else None,
                False,
            )[1]
        )
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=30.0)
        assert client.bytes_delivered == 100_000
        assert max(sizes) == MSS

    def test_client_to_server_direction(self):
        sim, a, b, _ = wire_pair()
        received = []
        accepted = []

        def on_accept(conn):
            conn.on_data = lambda n, p: received.append(n)
            accepted.append(conn)

        TcpListener(b, 80, on_accept)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.call_at(1.0, lambda: client.send(5000))
        sim.run(until=30.0)
        assert sum(received) == 5000

    def test_send_before_establishment_is_buffered(self):
        sim, a, b, _ = wire_pair()
        make_server(b)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        client.send(3000)  # connection still in SYN_SENT
        received = []
        # peek server-side delivery via its connection's counters
        sim.run(until=30.0)
        server_conn = next(iter(b.tcp_connections.values()), None)
        assert server_conn is not None
        assert server_conn.bytes_delivered == 3000

    def test_throughput_limited_by_window_and_rtt(self):
        """With a 64 KB window and a long RTT, goodput ~ rwnd / RTT."""
        sim, a, b, _ = wire_pair(rate=mbps(100), latency=ms(50))
        make_server(b, response_bytes=2_000_000)
        done = []
        client = TcpConnection.connect(
            a, Endpoint("10.0.0.2", 80),
            on_close=lambda c: done.append(sim.now),
        )
        sim.run(until=60.0)
        assert client.bytes_delivered == 2_000_000
        # rwnd/RTT = 64KB / 0.1s ≈ 655 KB/s -> 2 MB needs ≥ ~3 s.
        assert done[0] > 2.5


class TestLossRecovery:
    def test_single_data_loss_recovers_fast(self):
        state = {"dropped": False}

        def drop_one_segment(packet):
            if (
                packet.proto == "tcp"
                and packet.payload_size > 0
                and packet.seq > 3000
                and not state["dropped"]
            ):
                state["dropped"] = True
                return True
            return False

        sim, a, b, _ = wire_pair(drop=drop_one_segment)
        make_server(b, response_bytes=60_000)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=30.0)
        assert state["dropped"]
        assert client.bytes_delivered == 60_000

    def test_random_loss_still_delivers_everything(self):
        import numpy as np

        rng = np.random.default_rng(7)

        def lossy(packet):
            return packet.payload_size > 0 and rng.random() < 0.05

        sim, a, b, _ = wire_pair(drop=lossy)
        make_server(b, response_bytes=200_000)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=120.0)
        assert client.bytes_delivered == 200_000

    def test_loss_increases_transfer_time(self):
        def run(drop):
            sim, a, b, _ = wire_pair(rate=mbps(4), latency=ms(1), drop=drop)
            make_server(b, response_bytes=500_000)
            finished = []
            TcpConnection.connect(
                a, Endpoint("10.0.0.2", 80),
                on_close=lambda c: finished.append(sim.now),
            )
            sim.run(until=300.0)
            return finished[0]

        clean = run(None)
        import numpy as np

        rng = np.random.default_rng(3)
        lossy = run(lambda p: p.payload_size > 0 and rng.random() < 0.05)
        assert lossy > clean

    def test_retransmission_counters(self):
        state = {"dropped": 0}

        def drop_some(packet):
            if packet.proto == "tcp" and packet.payload_size > 0:
                if packet.seq in (1, MSS + 1) and state["dropped"] < 2:
                    state["dropped"] += 1
                    return True
            return False

        sim, a, b, _ = wire_pair(drop=drop_some)
        make_server(b, response_bytes=30_000)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=60.0)
        server_conn = next(iter(b.tcp_connections.values()), None)
        # server may have deregistered after close; counters checked on client
        assert client.bytes_delivered == 30_000
        assert state["dropped"] == 2


class TestClose:
    def test_fin_exchange_closes_both_sides(self):
        sim, a, b, _ = wire_pair()
        make_server(b, response_bytes=1000)
        closed = []
        client = TcpConnection.connect(
            a, Endpoint("10.0.0.2", 80),
            on_close=lambda c: closed.append("client"),
        )
        sim.run(until=30.0)
        assert "client" in closed
        # client responds with its own close
        client.close()
        sim.run(until=60.0)
        assert client.state == CLOSED
        assert b.tcp_connections == {}

    def test_send_after_close_raises(self):
        sim, a, b, _ = wire_pair()
        make_server(b)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=5.0)
        client.close()
        with pytest.raises(SocketError):
            client.send(10)

    def test_abort_unregisters(self):
        sim, a, b, _ = wire_pair()
        make_server(b)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=5.0)
        client.abort()
        assert (client.local, client.remote) not in a.tcp_connections


class TestSpoofing:
    def test_spoofed_local_endpoint_on_connect(self):
        """The proxy connects to the server *as the client*."""
        sim, a, b, _ = wire_pair()
        sources = []
        b.taps.append(
            lambda p, i: (sources.append(p.src.ip), False)[1]
        )
        make_server(b, response_bytes=100)
        conn = TcpConnection.connect(
            a, Endpoint("10.0.0.2", 80), local_ip="172.16.0.5"
        )
        # "a" needs to accept packets addressed to the spoofed ip
        a.taps.append(lambda p, i: a.try_dispatch(p))
        sim.run(until=10.0)
        assert set(sources) == {"172.16.0.5"}
        assert conn.bytes_delivered == 100


class TestRttEstimation:
    def test_transfer_completes_over_high_latency_path(self):
        sim, a, b, _ = wire_pair(rate=mbps(100), latency=ms(20))
        make_server(b, response_bytes=200_000)
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=60.0)
        assert client.bytes_delivered == 200_000

    def test_rto_backoff_grows_on_repeated_loss(self):
        attempts = []

        def drop_all_syns(packet):
            if TcpFlags.SYN in packet.flags and TcpFlags.ACK not in packet.flags:
                attempts.append(packet.created_at)
                return True
            return False

        sim, a, b, _ = wire_pair(drop=drop_all_syns)
        make_server(b)
        TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=40.0)
        assert len(attempts) >= 4
        gaps = [y - x for x, y in zip(attempts, attempts[1:])]
        assert all(b2 >= b1 * 1.5 for b1, b2 in zip(gaps, gaps[1:]))
