"""Unit tests for node dispatch and UDP sockets."""

import pytest

from repro.errors import NetworkError, SocketError
from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.node import Node
from repro.net.udp import UdpSocket
from repro.sim import Simulator
from repro.units import mbps, ms

from tests.net.helpers import wire_pair


class TestNode:
    def test_duplicate_interface_rejected(self):
        node = Node(Simulator(), "n", "10.0.0.1")
        node.add_interface("eth0")
        with pytest.raises(NetworkError):
            node.add_interface("eth0")

    def test_route_specific_beats_default(self):
        node = Node(Simulator(), "n", "10.0.0.1")
        eth0, eth1 = node.add_interface("eth0"), node.add_interface("eth1")
        node.set_default_route(eth0)
        node.add_route("10.0.0.9", eth1)
        assert node.route_for("10.0.0.9") is eth1
        assert node.route_for("10.0.0.7") is eth0

    def test_unroutable_send_counts_drop(self):
        node = Node(Simulator(), "n", "10.0.0.1")
        socket = UdpSocket(node, 5000)
        socket.sendto(10, Endpoint("10.0.0.2", 80))
        assert node.packets_dropped_no_route == 1

    def test_tap_consumes_packet(self):
        sim, a, b, _ = wire_pair()
        b.taps.append(lambda p, i: True)
        received = []
        UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        UdpSocket(a, 5000).sendto(10, Endpoint("10.0.0.2", 7000))
        sim.run()
        assert received == []

    def test_tap_pass_through(self):
        sim, a, b, _ = wire_pair()
        seen = []
        b.taps.append(lambda p, i: (seen.append(p), False)[1])
        received = []
        UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        UdpSocket(a, 5000).sendto(10, Endpoint("10.0.0.2", 7000))
        sim.run()
        assert len(seen) == 1 and len(received) == 1

    def test_forwarding_chain(self):
        """a -- m -- b : middle node forwards transit packets."""
        sim = Simulator()
        a = Node(sim, "a", "10.0.0.1")
        m = Node(sim, "m", "10.0.0.2")
        b = Node(sim, "b", "10.0.0.3")
        m.forwarding = True
        l1 = Link(sim, mbps(100), ms(0.1))
        l2 = Link(sim, mbps(100), ms(0.1))
        ia = a.add_interface("eth0")
        im1, im2 = m.add_interface("eth0"), m.add_interface("eth1")
        ib = b.add_interface("eth0")
        l1.attach(ia, im1)
        l2.attach(im2, ib)
        a.set_default_route(ia)
        m.add_route("10.0.0.1", im1)
        m.add_route("10.0.0.3", im2)
        b.set_default_route(ib)
        received = []
        UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        UdpSocket(a, 5000).sendto(99, Endpoint("10.0.0.3", 7000))
        sim.run()
        assert len(received) == 1
        assert m.packets_forwarded == 1

    def test_non_forwarding_node_drops_transit(self):
        sim, a, b, _ = wire_pair()
        UdpSocket(a, 5000).sendto(10, Endpoint("10.55.55.55", 80))
        sim.run()
        assert b.packets_dropped_no_handler == 1


class TestUdpSocket:
    def test_queue_mode_recv(self):
        sim, a, b, _ = wire_pair()
        receiver = UdpSocket(b, 7000)
        UdpSocket(a, 5000).sendto(42, Endpoint("10.0.0.2", 7000))
        got = []

        def consumer():
            packet = yield receiver.recv()
            got.append(packet.payload_size)

        sim.process(consumer())
        sim.run()
        assert got == [42]

    def test_try_recv(self):
        sim, a, b, _ = wire_pair()
        receiver = UdpSocket(b, 7000)
        assert receiver.try_recv() is None
        UdpSocket(a, 5000).sendto(1, Endpoint("10.0.0.2", 7000))
        sim.run()
        assert receiver.try_recv().payload_size == 1

    def test_send_on_closed_socket_raises(self):
        sim, a, _b, _ = wire_pair()
        socket = UdpSocket(a, 5000)
        socket.close()
        with pytest.raises(SocketError):
            socket.sendto(1, Endpoint("10.0.0.2", 7000))

    def test_closed_socket_stops_receiving(self):
        sim, a, b, _ = wire_pair()
        received = []
        receiver = UdpSocket(b, 7000, on_receive=lambda p: received.append(p))
        receiver.close()
        UdpSocket(a, 5000).sendto(1, Endpoint("10.0.0.2", 7000))
        sim.run()
        assert received == []
        assert b.packets_dropped_no_handler == 1

    def test_spoofed_source(self):
        sim, a, b, _ = wire_pair()
        seen = []
        UdpSocket(b, 7000, on_receive=lambda p: seen.append(p.src))
        UdpSocket(a, 5000).sendto(
            1, Endpoint("10.0.0.2", 7000), src=Endpoint("99.9.9.9", 1234)
        )
        sim.run()
        assert seen == [Endpoint("99.9.9.9", 1234)]

    def test_spoofed_bind_receives_foreign_address(self):
        """A socket bound to a spoofed ip receives packets for that ip."""
        sim, a, b, _ = wire_pair()
        received = []
        UdpSocket(
            b, 7000, on_receive=lambda p: received.append(p), local_ip="77.7.7.7"
        )
        # b's tap redirects transit packets into local dispatch
        b.taps.append(lambda p, i: b.try_dispatch(p))
        UdpSocket(a, 5000).sendto(5, Endpoint("77.7.7.7", 7000))
        sim.run()
        assert len(received) == 1

    def test_byte_counters(self):
        sim, a, b, _ = wire_pair()
        receiver = UdpSocket(b, 7000)
        sender = UdpSocket(a, 5000)
        sender.sendto(100, Endpoint("10.0.0.2", 7000))
        sender.sendto(200, Endpoint("10.0.0.2", 7000))
        sim.run()
        assert sender.bytes_sent == 300
        assert receiver.bytes_received == 300
        assert receiver.datagrams_received == 2
