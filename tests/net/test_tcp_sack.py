"""Unit tests for TCP SACK (RFC 2018 subset)."""

import numpy as np
import pytest

from repro.net.addr import Endpoint
from repro.net.packet import MSS, TcpFlags
from repro.net.tcp import TcpConnection, TcpListener

from tests.net.helpers import wire_pair


def make_pair(drop=None):
    sim, a, b, _ = wire_pair(drop=drop)
    accepted = []
    TcpListener(b, 80, lambda conn: accepted.append(conn))
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    sim.run(until=1.0)
    client.cwnd = client.peer_rwnd
    return sim, a, b, client, accepted[0]


class TestSackAdvertisement:
    def test_gap_produces_sack_blocks(self):
        state = {"dropped": False}

        def drop_second(packet):
            if (
                packet.payload_size > 0 and packet.seq == MSS + 1
                and not state["dropped"]
            ):
                state["dropped"] = True
                return True
            return False

        sim, a, b, client, server = make_pair(drop=drop_second)
        sacks_seen = []
        a.taps.append(
            lambda p, i: (
                sacks_seen.append(p.sack_blocks) if p.sack_blocks else None,
                False,
            )[1]
        )
        client.send(MSS * 4)
        sim.run(until=5.0)
        assert state["dropped"]
        assert sacks_seen  # receiver advertised the out-of-order range
        start, end = sacks_seen[0][0]
        assert start == 2 * MSS + 1  # the segment after the hole

    def test_no_sack_blocks_in_order(self):
        sim, a, b, client, server = make_pair()
        sacks_seen = []
        a.taps.append(
            lambda p, i: (
                sacks_seen.append(p.sack_blocks) if p.sack_blocks else None,
                False,
            )[1]
        )
        client.send(MSS * 5)
        sim.run(until=5.0)
        assert sacks_seen == []


class TestSackScoreboard:
    def test_register_and_hole_detection(self):
        sim, a, b, client, server = make_pair()
        client.send(MSS * 6)
        sim.run(until=2.0)
        # Manufacture a scoreboard directly.
        client.snd_una = 1
        client.snd_nxt = 1 + 6 * MSS
        client._sacked = []
        client._register_sack(((1 + MSS, 1 + 3 * MSS),))
        hole = client._first_hole()
        assert hole == (1, 1 + MSS)
        client._register_sack(((1 + 4 * MSS, 1 + 6 * MSS),))
        # Holes: [1, 1+MSS) and [1+3MSS, 1+4MSS)
        client.snd_una = 1 + 3 * MSS
        client._prune_sacked()
        assert client._first_hole() == (1 + 3 * MSS, 1 + 4 * MSS)

    def test_overlapping_blocks_merge(self):
        sim, a, b, client, server = make_pair()
        client.snd_una = 1
        client.snd_nxt = 1 + 10 * MSS
        client._register_sack(((100, 300), (200, 500)))
        assert client._sacked == [(100, 500)]

    def test_retransmit_all_skips_sacked(self):
        sim, a, b, client, server = make_pair()
        sent = []
        client.on_segment_tx = lambda p: sent.append((p.seq, p.end_seq))
        client.send(MSS * 4)
        sim.run(until=2.0)
        sent.clear()
        # pretend segments 2-3 were SACKed but nothing cumulative
        client.snd_una = 1
        client._sacked = [(1 + MSS, 1 + 3 * MSS)]
        resent = client.retransmit_all()
        assert resent >= 2
        for seq, end_seq in sent:
            # nothing inside the SACKed range is retransmitted
            assert end_seq <= 1 + MSS or seq >= 1 + 3 * MSS


class TestSackRecovery:
    def test_multi_loss_window_recovers_without_waiting_rto(self):
        """Two losses in one flight: SACK recovery fills both holes
        quickly (well under the 200 ms RTO floor)."""
        drops = {"seqs": {1 + MSS, 1 + 3 * MSS}, "done": set()}

        def drop_two(packet):
            if (
                packet.payload_size > 0
                and packet.seq in drops["seqs"]
                and packet.seq not in drops["done"]
            ):
                drops["done"].add(packet.seq)
                return True
            return False

        sim, a, b, client, server = make_pair(drop=drop_two)
        start = sim.now
        client.send(MSS * 8)
        while server.bytes_delivered < MSS * 8 and sim.now < start + 10.0:
            sim.step()
        elapsed = sim.now - start
        assert server.bytes_delivered == MSS * 8
        assert elapsed < 0.15  # no RTO stall

    def test_heavy_random_loss_transfer_completes(self):
        rng = np.random.default_rng(13)

        def lossy(packet):
            return packet.payload_size > 0 and rng.random() < 0.1

        sim, a, b, client, server = make_pair(drop=lossy)
        client.send(300_000)
        sim.run(until=120.0)
        assert server.bytes_delivered == 300_000
