"""Shared topology builders for network-layer tests."""

from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.sim import Simulator
from repro.units import mbps, ms


def wire_pair(
    sim=None, rate=mbps(100), latency=ms(0.2), jitter=None, drop=None
):
    """Two nodes 'a' (10.0.0.1) and 'b' (10.0.0.2) joined by a link."""
    sim = sim or Simulator()
    a = Node(sim, "a", "10.0.0.1")
    b = Node(sim, "b", "10.0.0.2")
    link = Link(sim, rate_bps=rate, latency=latency, jitter=jitter, drop=drop)
    ia, ib = a.add_interface("eth0"), b.add_interface("eth0")
    link.attach(ia, ib)
    a.set_default_route(ia)
    b.set_default_route(ib)
    return sim, a, b, link


def wireless_cell(sim=None, n_clients=2, rng=None, trace=None, **medium_kwargs):
    """An AP-less cell: a gateway node plus n client nodes on one medium."""
    sim = sim or Simulator()
    medium = WirelessMedium(sim, rng=rng, trace=trace, **medium_kwargs)
    gateway = Node(sim, "gw", "10.0.0.254")
    gw_iface = gateway.add_interface("wl0")
    medium.attach(gw_iface, gateway=True)
    gateway.set_default_route(gw_iface)
    clients = []
    for index in range(n_clients):
        client = Node(sim, f"c{index}", f"10.0.1.{index + 1}")
        iface = client.add_interface("wl0")
        medium.attach(iface)
        client.set_default_route(iface)
        clients.append(client)
    return sim, medium, gateway, clients
