"""Unit tests for the delayed-ACK policy."""

import pytest

from repro.net.addr import Endpoint
from repro.net.packet import MSS, TcpFlags
from repro.net.tcp import DELAYED_ACK_S, TcpConnection, TcpListener

from tests.net.helpers import wire_pair


def count_pure_acks(taps_log):
    return sum(
        1 for p in taps_log
        if p.proto == "tcp" and p.payload_size == 0
        and TcpFlags.ACK in p.flags and TcpFlags.SYN not in p.flags
        and TcpFlags.FIN not in p.flags
    )


def make_pair(drop=None):
    sim, a, b, _ = wire_pair(drop=drop)
    accepted = []
    TcpListener(b, 80, lambda conn: accepted.append(conn))
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    sim.run(until=1.0)
    return sim, a, b, client, accepted[0]


def test_roughly_one_ack_per_two_segments():
    sim, a, b, client, server = make_pair()
    acks_at_b = []
    b.taps.append(lambda p, i: (acks_at_b.append(p), False)[1])
    client.cwnd = client.peer_rwnd
    client.send(MSS * 10)  # exactly 10 segments
    sim.run(until=5.0)
    pure_acks = count_pure_acks(acks_at_b)
    assert pure_acks <= 6  # ~5 with delayed ACKs; 10 without

def test_single_segment_acked_after_delay():
    sim, a, b, client, server = make_pair()
    ack_times = []
    # ACKs from the receiver (b) arrive back at the sender's node (a).
    a.taps.append(
        lambda p, i: (
            ack_times.append(sim.now)
            if p.payload_size == 0 and TcpFlags.ACK in p.flags
            else None,
            False,
        )[1]
    )
    start = sim.now
    client.send(500)  # one lone segment
    sim.run(until=start + 1.0)
    assert server.bytes_delivered == 500
    # The ACK came via the delayed-ACK timer, not immediately.
    lone_acks = [t for t in ack_times if t > start]
    assert lone_acks
    assert lone_acks[0] - start >= DELAYED_ACK_S * 0.9


def test_out_of_order_acks_immediately():
    """A gap must produce immediate dup-ACKs for fast retransmit."""
    state = {"dropped": False}

    def drop_one(packet):
        if (
            packet.payload_size > 0 and packet.seq == 1
            and not state["dropped"]
        ):
            state["dropped"] = True
            return True
        return False

    sim, a, b, client, server = make_pair(drop=drop_one)
    client.cwnd = client.peer_rwnd
    client.send(MSS * 6)
    sim.run(until=10.0)
    assert state["dropped"]
    assert server.bytes_delivered == MSS * 6  # recovered


def test_marked_segment_flushes_ack():
    from repro.core.burster import MarkingController

    sim, a, b, client, server = make_pair()
    ack_times = []
    a.taps.append(
        lambda p, i: (
            ack_times.append(sim.now)
            if p.proto == "tcp" and p.payload_size == 0
            else None,
            False,
        )[1]
    )
    client.cwnd = client.peer_rwnd
    controller = MarkingController(client)
    start = sim.now
    controller.hand_bytes(500, mark_last=True)  # one marked segment
    sim.run(until=start + 0.02)  # well under the delack timer
    # The marked packet was ACKed immediately (receiver about to sleep).
    assert any(t - start < 0.02 for t in ack_times)
