"""Unit tests for the access point."""

import pytest

from repro.net.access_point import AccessPoint
from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator
from repro.units import mbps, ms


def build_infrastructure(sim=None, rng=None, n_clients=2, **ap_kwargs):
    """wired host -- link -- AP -- medium -- clients."""
    sim = sim or Simulator()
    host = Node(sim, "host", "10.0.2.1")
    ap = AccessPoint(sim, "ap", "10.0.0.254", rng=rng, **ap_kwargs)
    link = Link(sim, mbps(100), ms(0.2))
    host_iface = host.add_interface("eth0")
    link.attach(host_iface, ap.wired)
    host.set_default_route(host_iface)
    medium = WirelessMedium(sim)
    medium.attach(ap.wireless, gateway=True)
    clients = []
    for index in range(n_clients):
        client = Node(sim, f"c{index}", f"10.0.1.{index + 1}")
        iface = client.add_interface("wl0")
        medium.attach(iface)
        client.set_default_route(iface)
        clients.append(client)
    return sim, host, ap, medium, clients


def test_downlink_forwarding():
    sim, host, ap, medium, clients = build_infrastructure()
    received = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: received.append(p))
    UdpSocket(host, 5000).sendto(321, Endpoint(clients[0].ip, 7000))
    sim.run()
    assert len(received) == 1
    assert received[0].payload_size == 321
    assert ap.packets_forwarded == 1


def test_uplink_forwarding():
    sim, host, ap, medium, clients = build_infrastructure()
    received = []
    UdpSocket(host, 7000, on_receive=lambda p: received.append(p))
    UdpSocket(clients[0], 5000).sendto(55, Endpoint(host.ip, 7000))
    sim.run()
    assert len(received) == 1


def test_round_trip_udp_echo():
    sim, host, ap, medium, clients = build_infrastructure()
    client = clients[0]
    echoed = []

    def echo(packet):
        host_socket.sendto(packet.payload_size, packet.src)

    host_socket = UdpSocket(host, 7000, on_receive=echo)
    UdpSocket(client, 6000, on_receive=lambda p: echoed.append(sim.now))
    UdpSocket(client, 5000).sendto(10, Endpoint(host.ip, 7000), src=Endpoint(client.ip, 6000))
    sim.run()
    assert len(echoed) == 1


def test_forwarding_preserves_fifo_order_despite_jitter():
    rng = RngStreams(seed=3).get("ap")
    sim, host, ap, medium, clients = build_infrastructure(rng=rng)
    order = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: order.append(p.seq))
    sender = UdpSocket(host, 5000)
    for seq in range(20):
        sender.sendto(800, Endpoint(clients[0].ip, 7000), seq=seq)
    sim.run()
    assert order == list(range(20))


def test_jitter_varies_forwarding_delay():
    rng = RngStreams(seed=3).get("ap")
    sim, host, ap, medium, clients = build_infrastructure(
        rng=rng, jitter_mean_s=ms(1), spike_prob=0.2, spike_max_s=ms(6)
    )
    times = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: times.append(sim.now))
    sender = UdpSocket(host, 5000)
    for seq in range(30):
        # spaced sends so queueing does not mask jitter
        sim.call_at(
            seq * 0.05,
            lambda s=seq: sender.sendto(100, Endpoint(clients[0].ip, 7000), seq=s),
        )
    sim.run()
    deltas = [t - round(t / 0.05) * 0.05 for t in times]
    assert max(deltas) - min(deltas) > ms(0.5)  # visible jitter


def test_no_rng_means_deterministic_delay():
    sim, host, ap, medium, clients = build_infrastructure(rng=None)
    times = []
    UdpSocket(clients[0], 7000, on_receive=lambda p: times.append(sim.now))
    sender = UdpSocket(host, 5000)
    for seq in range(5):
        sim.call_at(
            seq * 0.1,
            lambda s=seq: sender.sendto(100, Endpoint(clients[0].ip, 7000), seq=s),
        )
    sim.run()
    gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
    assert len(gaps) == 1  # identical per-packet latency


def test_downlink_queue_depth_tracked():
    sim, host, ap, medium, clients = build_infrastructure()
    sender = UdpSocket(host, 5000)
    for seq in range(50):
        sender.sendto(1400, Endpoint(clients[0].ip, 7000), seq=seq)
    UdpSocket(clients[0], 7000)
    sim.run()
    assert ap.max_downlink_depth > 1
