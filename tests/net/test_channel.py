"""Unit tests for the per-client Gilbert–Elliott channel model.

The load-bearing contracts: a client's state trajectory is a pure
function of ``(plan, seed, ip)`` — independent of query pattern and of
how many frames fly — and the model draws only from its own reserved
``channel:``/``channel-loss:`` streams.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net.channel import (
    LOSS_STREAM_PREFIX,
    TRANSITION_STREAM_PREFIX,
    ChannelModel,
    ChannelPlan,
)
from repro.net.addr import Endpoint
from repro.net.packet import Packet
from repro.sim.random import RngStreams
from repro.units import ms

CLIENTS = ("10.0.1.2", "10.0.1.3")


def make_model(plan=None, seed=11, clients=CLIENTS, obs=None):
    return ChannelModel(
        plan if plan is not None else ChannelPlan(),
        RngStreams(seed=seed),
        clients,
        obs=obs,
    )


class TestChannelPlan:
    def test_defaults_are_valid(self):
        plan = ChannelPlan()
        assert plan.epoch_s == pytest.approx(ms(100))
        assert plan.start_good

    @pytest.mark.parametrize(
        "field", ["p_good_bad", "p_bad_good", "loss_good", "loss_bad"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_are_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            ChannelPlan(**{field: value})

    @pytest.mark.parametrize("epoch_s", [0.0, -1.0])
    def test_epoch_must_be_positive(self, epoch_s):
        with pytest.raises(ConfigurationError):
            ChannelPlan(epoch_s=epoch_s)

    def test_dict_round_trip(self):
        plan = ChannelPlan(
            p_good_bad=0.2, p_bad_good=0.6, loss_bad=0.7,
            epoch_s=ms(50), start_good=False,
        )
        assert ChannelPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown channel plan"):
            ChannelPlan.from_dict({"p_good_bad": 0.1, "fade_margin": 3})

    def test_spec_mirrors_the_plan(self):
        plan = ChannelPlan(p_good_bad=0.2, p_bad_good=0.6, loss_bad=0.7)
        spec = plan.spec
        assert (spec.p_good_bad, spec.p_bad_good) == (0.2, 0.6)
        assert (spec.loss_good, spec.loss_bad) == (0.0, 0.7)


def trajectory(model, ip, times):
    return tuple(model.state_good(ip, t) for t in times)


class TestDeterminism:
    #: Deep-fading plan so trajectories actually move between epochs.
    PLAN = ChannelPlan(p_good_bad=0.4, p_bad_good=0.5, epoch_s=ms(100))

    def test_state_is_pure_function_of_plan_seed_ip(self):
        times = [i * 0.1 for i in range(40)]
        first = {
            ip: trajectory(make_model(self.PLAN), ip, times)
            for ip in CLIENTS
        }
        second = {
            ip: trajectory(make_model(self.PLAN), ip, times)
            for ip in CLIENTS
        }
        assert first == second
        # Clients evolve on independent streams — with 40 epochs at
        # these rates, identical trajectories would mean stream aliasing.
        assert first[CLIENTS[0]] != first[CLIENTS[1]]

    def test_seed_changes_the_trajectory(self):
        times = [i * 0.1 for i in range(40)]
        a = trajectory(make_model(self.PLAN, seed=1), CLIENTS[0], times)
        b = trajectory(make_model(self.PLAN, seed=2), CLIENTS[0], times)
        assert a != b

    def test_lazy_advancement_is_query_pattern_independent(self):
        """Querying every epoch vs. jumping straight to t lands on the
        same state: advancement consumes one draw per epoch, never one
        per query."""
        stepped = make_model(self.PLAN)
        jumped = make_model(self.PLAN)
        for i in range(1, 41):
            stepped.state_good(CLIENTS[0], i * 0.1)
        assert jumped.state_good(CLIENTS[0], 4.0) == stepped.state_good(
            CLIENTS[0], 4.0
        )
        assert jumped.transitions <= stepped.transitions == jumped.transitions

    def test_frame_count_does_not_perturb_the_trajectory(self):
        """Loss coin flips draw from ``channel-loss:``, transitions from
        ``channel:`` — hammering one client with frames cannot move any
        state trajectory (the exclusive-stream fix, locally)."""
        plan = ChannelPlan(
            p_good_bad=0.4, p_bad_good=0.5,
            loss_good=0.5, loss_bad=0.9, epoch_s=ms(100),
        )
        quiet = make_model(plan)
        busy = make_model(plan)
        packet = Packet(
            "udp", Endpoint(CLIENTS[0], 5004), Endpoint("10.0.2.1", 80),
            payload_size=100,
        )
        times = []
        for i in range(40):
            now = i * 0.1
            for _ in range(7):
                busy.tx_blocked(now, packet)
            times.append(now)
        assert trajectory(quiet, CLIENTS[0], times) == trajectory(
            make_model(plan), CLIENTS[0], times
        )
        # Re-query the busy model's history endpoint: same final state.
        assert busy.state_good(CLIENTS[0], 3.9) == quiet.state_good(
            CLIENTS[0], 3.9
        )


class TestStreamExclusivity:
    def test_model_only_touches_reserved_streams(self):
        """Every stream the model ever materializes carries one of the
        two reserved prefixes — the global half of the exclusive-stream
        contract (nothing else uses those prefixes by construction)."""
        streams = RngStreams(seed=3)
        plan = ChannelPlan(
            p_good_bad=0.4, p_bad_good=0.5, loss_bad=0.9, epoch_s=ms(100)
        )
        model = ChannelModel(plan, streams, CLIENTS)
        packet = Packet(
            "udp", Endpoint(CLIENTS[0], 5004), Endpoint("10.0.2.1", 80),
            payload_size=100,
        )
        for i in range(30):
            model.state_good(CLIENTS[1], i * 0.1)
            model.tx_blocked(i * 0.1, packet)
            model.rx_blocked(i * 0.1, CLIENTS[1])
        assert all(
            name.startswith((TRANSITION_STREAM_PREFIX, LOSS_STREAM_PREFIX))
            for name in streams._streams
        )

    def test_lossless_plan_never_draws_loss_coins(self):
        """``loss == 0`` short-circuits before the RNG: a lossless
        channel leaves its loss streams untouched (and thus cheap)."""
        streams = RngStreams(seed=3)
        plan = ChannelPlan(
            p_good_bad=0.4, p_bad_good=0.5,
            loss_good=0.0, loss_bad=0.0, epoch_s=ms(100),
        )
        model = ChannelModel(plan, streams, CLIENTS)
        packet = Packet(
            "udp", Endpoint(CLIENTS[0], 5004), Endpoint("10.0.2.1", 80),
            payload_size=100,
        )
        for i in range(30):
            assert not model.tx_blocked(i * 0.1, packet)
            assert not model.rx_blocked(i * 0.1, CLIENTS[0])
        consumed = streams.get(f"{LOSS_STREAM_PREFIX}{CLIENTS[0]}").random()
        fresh = RngStreams(seed=3).get(
            f"{LOSS_STREAM_PREFIX}{CLIENTS[0]}"
        ).random()
        assert consumed == fresh


class TestQueries:
    def test_unmodeled_ips_are_always_good(self):
        model = make_model()
        assert model.state_good("10.0.2.1", 5.0)
        assert not model.rx_blocked(5.0, "10.0.2.1")
        packet = Packet(
            "udp", Endpoint("10.0.2.1", 80), Endpoint(CLIENTS[0], 5004),
            payload_size=100,
        )
        assert not model.tx_blocked(5.0, packet)
        assert not model.models("10.0.2.1")
        assert model.models(CLIENTS[0])

    def test_needs_at_least_one_client(self):
        with pytest.raises(ConfigurationError):
            ChannelModel(ChannelPlan(), RngStreams(seed=1), [])

    def test_always_bad_channel_blocks_frames(self):
        plan = ChannelPlan(
            p_good_bad=1.0, p_bad_good=0.0, loss_bad=1.0, epoch_s=ms(100)
        )
        model = make_model(plan)
        assert not model.state_good(CLIENTS[0], 1.0)
        assert model.rx_blocked(1.0, CLIENTS[0])
        assert model.rx_misses == 1

    def test_start_bad_initial_state(self):
        plan = ChannelPlan(p_good_bad=0.0, p_bad_good=0.0, start_good=False)
        model = make_model(plan)
        assert not model.state_good(CLIENTS[0], 0.0)
