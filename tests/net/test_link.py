"""Unit tests for point-to-point links."""

import pytest

from repro.errors import NetworkError
from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.udp import UdpSocket
from repro.sim import Simulator
from repro.units import mbps, ms, transmit_time

from tests.net.helpers import wire_pair


def test_rejects_nonpositive_rate():
    with pytest.raises(NetworkError):
        Link(Simulator(), rate_bps=0)


def test_rejects_negative_latency():
    with pytest.raises(NetworkError):
        Link(Simulator(), rate_bps=1e6, latency=-1.0)


def test_double_attach_rejected():
    sim, a, b, link = wire_pair()
    with pytest.raises(NetworkError):
        link.attach(a.interfaces["eth0"], b.interfaces["eth0"])


def test_transmit_from_foreign_interface_rejected():
    sim, a, b, link = wire_pair()
    stranger = Node(sim, "x", "10.9.9.9").add_interface("eth0")
    packet = Packet("udp", Endpoint("10.9.9.9", 1), Endpoint("10.0.0.1", 2))
    with pytest.raises(NetworkError):
        link.transmit(stranger, packet)


def test_delivery_time_is_serialization_plus_latency():
    sim, a, b, link = wire_pair(rate=mbps(10), latency=ms(1))
    received = []
    UdpSocket(b, 7000, on_receive=lambda p: received.append(sim.now))
    sender = UdpSocket(a, 5000)
    packet = sender.sendto(1000, Endpoint("10.0.0.2", 7000))
    sim.run()
    expected = transmit_time(packet.wire_size, mbps(10)) + ms(1)
    assert received == [pytest.approx(expected)]


def test_fifo_ordering_per_direction():
    sim, a, b, _link = wire_pair()
    order = []
    UdpSocket(b, 7000, on_receive=lambda p: order.append(p.seq))
    sender = UdpSocket(a, 5000)
    for seq in range(5):
        sender.sendto(1200, Endpoint("10.0.0.2", 7000), seq=seq)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_serialization_delays_accumulate_under_load():
    sim, a, b, _link = wire_pair(rate=mbps(1), latency=0.0)
    times = []
    UdpSocket(b, 7000, on_receive=lambda p: times.append(sim.now))
    sender = UdpSocket(a, 5000)
    for seq in range(3):
        sender.sendto(1000, Endpoint("10.0.0.2", 7000), seq=seq)
    sim.run()
    per_packet = transmit_time(1000 + 62, mbps(1))
    assert times == pytest.approx([per_packet, 2 * per_packet, 3 * per_packet])


def test_full_duplex_directions_independent():
    sim, a, b, _link = wire_pair(rate=mbps(1), latency=0.0)
    arrivals = {}
    UdpSocket(b, 7000, on_receive=lambda p: arrivals.setdefault("b", sim.now))
    UdpSocket(a, 7000, on_receive=lambda p: arrivals.setdefault("a", sim.now))
    UdpSocket(a, 5000).sendto(1000, Endpoint("10.0.0.2", 7000))
    UdpSocket(b, 5001).sendto(1000, Endpoint("10.0.0.1", 7000))
    sim.run()
    # Both directions deliver at the single-packet serialization time.
    assert arrivals["a"] == pytest.approx(arrivals["b"])


def test_drop_hook_discards_packets():
    dropped_every_other = {"count": 0}

    def drop(packet):
        dropped_every_other["count"] += 1
        return dropped_every_other["count"] % 2 == 0

    sim, a, b, link = wire_pair(drop=drop)
    received = []
    UdpSocket(b, 7000, on_receive=lambda p: received.append(p.seq))
    sender = UdpSocket(a, 5000)
    for seq in range(6):
        sender.sendto(100, Endpoint("10.0.0.2", 7000), seq=seq)
    sim.run()
    assert received == [0, 2, 4]
    assert link.packets_dropped == 3
    assert link.packets_delivered == 3


def test_jitter_hook_adds_delay():
    sim, a, b, _link = wire_pair(rate=mbps(100), latency=0.0, jitter=lambda p: ms(5))
    times = []
    UdpSocket(b, 7000, on_receive=lambda p: times.append(sim.now))
    packet = UdpSocket(a, 5000).sendto(100, Endpoint("10.0.0.2", 7000))
    sim.run()
    expected = transmit_time(packet.wire_size, mbps(100)) + ms(5)
    assert times == [pytest.approx(expected)]
