"""Tests for capture persistence."""

import pytest

from repro.errors import TraceError
from repro.net.capture_io import load_capture, save_capture
from repro.net.sniffer import FrameRecord


def frame(start=0.0, schedule_meta=None, marked=False):
    return FrameRecord(
        start=start, end=start + 0.002, src_ip="10.0.0.254", src_port=9797,
        dst_ip="10.0.1.1", dst_port=5004, proto="udp", wire_size=762,
        payload_size=700, tos_marked=marked, broadcast=schedule_meta is not None,
        packet_id=7, sender="ap", schedule_meta=schedule_meta,
    )


class TestCaptureIO:
    def test_round_trip(self, tmp_path):
        frames = [
            frame(0.0),
            frame(0.1, marked=True),
            frame(
                0.2,
                schedule_meta={"schedule": {"seq": 1, "srp": 0.2,
                                            "next_srp": 0.3, "slots": []}},
            ),
        ]
        path = save_capture(frames, tmp_path / "capture.jsonl")
        loaded = load_capture(path)
        assert loaded == frames

    def test_empty_capture_round_trip(self, tmp_path):
        path = save_capture([], tmp_path / "empty.jsonl")
        assert load_capture(path) == []

    def test_rejects_non_capture_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            load_capture(path)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "pcap"}\n')
        with pytest.raises(TraceError):
            load_capture(path)

    def test_rejects_corrupt_record(self, tmp_path):
        path = save_capture([frame()], tmp_path / "c.jsonl")
        with path.open("a") as handle:
            handle.write('{"nonsense": true}\n')
        with pytest.raises(TraceError):
            load_capture(path)

    def test_loaded_capture_feeds_replay(self, tmp_path):
        """End-to-end: simulate, save, load, replay."""
        from repro.core.bandwidth_model import calibrate
        from repro.core.client import PowerAwareClient
        from repro.core.delay_comp import AdaptiveCompensator
        from repro.core.scheduler import DynamicScheduler
        from repro.energy.replay import replay_policy
        from repro.experiments.scenarios import (
            ScenarioConfig, build_scenario, client_ip,
        )
        from repro.net.addr import Endpoint
        from repro.net.udp import UdpSocket
        from repro.wnic.power import WAVELAN_2_4GHZ

        scenario = build_scenario(ScenarioConfig(n_clients=1, seed=41))
        scheduler = DynamicScheduler(
            scenario.proxy, calibrate(scenario.medium), interval_s=0.1
        )
        scenario.proxy.attach_scheduler(scheduler)
        scenario.proxy.start()
        handle = scenario.clients[0]
        handle.daemon = PowerAwareClient(handle.node, handle.wnic)
        UdpSocket(handle.node, 5004)
        sender = UdpSocket(scenario.video_server, 25000)

        def feed():
            while scenario.sim.now < 3.0:
                sender.sendto(700, Endpoint(client_ip(0), 5004))
                yield scenario.sim.timeout(0.05)

        scenario.sim.process(feed())
        scenario.sim.run(until=3.5)

        path = save_capture(scenario.monitor.frames, tmp_path / "run.jsonl")
        loaded = load_capture(path)
        result = replay_policy(
            loaded, client_ip(0), AdaptiveCompensator(), WAVELAN_2_4GHZ
        )
        assert result.schedules_heard > 20
        assert result.report.energy_saved_pct > 40.0
