"""Unit tests for named seeded RNG streams."""

from repro.sim import RngStreams


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_same_seed_reproduces_draws(self):
        a = RngStreams(seed=42).get("jitter").random(10)
        b = RngStreams(seed=42).get("jitter").random(10)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        streams = RngStreams(seed=42)
        a = streams.get("a").random(10)
        b = streams.get("b").random(10)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").random(10)
        b = RngStreams(seed=2).get("x").random(10)
        assert (a != b).any()

    def test_draw_order_isolation(self):
        """Extra draws on one stream do not perturb another stream."""
        one = RngStreams(seed=9)
        one.get("noise").random(1000)  # extra activity
        polluted = one.get("signal").random(5)

        clean = RngStreams(seed=9).get("signal").random(5)
        assert (polluted == clean).all()

    def test_fork_is_deterministic_and_distinct(self):
        base = RngStreams(seed=3)
        fork_a = base.fork("trial-1").get("x").random(5)
        fork_a_again = RngStreams(seed=3).fork("trial-1").get("x").random(5)
        fork_b = RngStreams(seed=3).fork("trial-2").get("x").random(5)
        assert (fork_a == fork_a_again).all()
        assert (fork_a != fork_b).any()
