"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Simulator
from repro.sim.process import Interrupt, Process


class TestProcessBasics:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(sim.now)
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(worker())
        sim.run()
        assert log == [0.0, 1.0, 3.5]

    def test_process_receives_event_value(self):
        sim = Simulator()
        got = []

        def worker():
            value = yield sim.timeout(1.0, value=42)
            got.append(value)

        sim.process(worker())
        sim.run()
        assert got == [42]

    def test_process_return_value_becomes_event_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.value == "done"

    def test_process_join_by_yield(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            results.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert results == [(2.0, "child-result")]

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            Process(sim, lambda: None)

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 17

        sim.process(bad())
        with pytest.raises(ProcessError):
            sim.run()

    def test_unhandled_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.process(bad())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_is_alive_lifecycle(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)

        proc = sim.process(worker())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestFailurePropagation:
    def test_failed_event_is_thrown_into_process(self):
        sim = Simulator()
        caught = []

        def worker():
            event = sim.event()
            sim.call_at(1.0, lambda: event.fail(RuntimeError("bad")))
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(worker())
        sim.run()
        assert caught == ["bad"]


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        proc = sim.process(sleeper())
        sim.call_at(3.0, lambda: proc.interrupt("wake up"))
        sim.run()
        assert log == [(3.0, "wake up")]

    def test_interrupted_process_can_keep_running(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        proc = sim.process(sleeper())
        sim.call_at(3.0, lambda: proc.interrupt())
        sim.run()
        assert log == [4.0]

    def test_stale_event_does_not_resume_twice(self):
        """After an interrupt, the abandoned timeout must not re-wake us."""
        sim = Simulator()
        wakeups = []

        def sleeper():
            try:
                yield sim.timeout(5.0)
            except Interrupt:
                wakeups.append(("interrupt", sim.now))
            yield sim.timeout(100.0)
            wakeups.append(("timeout", sim.now))

        proc = sim.process(sleeper())
        sim.call_at(1.0, lambda: proc.interrupt())
        sim.run()
        assert wakeups == [("interrupt", 1.0), ("timeout", 101.0)]

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.5)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(ProcessError):
            proc.interrupt()
