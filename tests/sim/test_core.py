"""Unit tests for the simulation event loop and primitive events."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestSimulatorClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_empty_is_noop(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_in_past_raises(self):
        sim = Simulator()
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_empty_is_infinite(self):
        assert Simulator().peek() == float("inf")

    def test_step_without_events_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        fired = []
        sim.timeout(3.5).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [3.5]

    def test_timeout_carries_value(self):
        sim = Simulator()
        seen = []
        sim.timeout(1.0, value="payload").add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["payload"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_zero_delay_fires_immediately(self):
        sim = Simulator()
        fired = []
        sim.timeout(0.0).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.timeout(1.0, value=label).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_excludes_later_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(1.0).add_callback(lambda e: fired.append(1))
        sim.timeout(2.0).add_callback(lambda e: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.now == 1.5


class TestEvent:
    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_twice_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_fail_marks_not_ok(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("boom"))
        sim.run()
        assert not event.ok
        assert isinstance(event.value, RuntimeError)

    def test_callback_after_processed_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_call_at_runs_function_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.call_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)


class TestConditions:
    def test_any_of_fires_on_first(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(2.0, "slow")
        results = []
        sim.any_of([t1, t2]).add_callback(lambda e: results.append(dict(e.value)))
        sim.run()
        assert results[0] == {t1: "fast"}

    def test_any_of_empty_fires_immediately(self):
        sim = Simulator()
        cond = sim.any_of([])
        assert cond.triggered

    def test_all_of_waits_for_everything(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        when = []
        sim.all_of([t1, t2]).add_callback(lambda e: when.append(sim.now))
        sim.run()
        assert when == [2.0]

    def test_all_of_collects_values(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        values = []
        sim.all_of([t1, t2]).add_callback(lambda e: values.append(dict(e.value)))
        sim.run()
        assert values[0] == {t1: "a", t2: "b"}
