"""Unit tests for Store and Resource."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Store
from repro.sim.resources import Resource


class TestStore:
    def test_put_then_get_is_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_waits_for_put(self):
        sim = Simulator()
        store = Store(sim)
        arrival = []

        def consumer():
            item = yield store.get()
            arrival.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert arrival == [(5.0, "late")]

    def test_capacity_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("first")
            log.append(("stored-first", sim.now))
            yield store.put("second")
            log.append(("stored-second", sim.now))

        def consumer():
            yield sim.timeout(2.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log[0] == ("stored-first", 0.0)
        assert log[1] == ("got", "first", 2.0)
        assert log[2] == ("stored-second", 2.0)

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.items == (1, 2)

    def test_try_get_returns_none_when_empty(self):
        sim = Simulator()
        assert Store(sim).try_get() is None

    def test_try_get_with_waiting_getters_raises(self):
        sim = Simulator()
        store = Store(sim)

        def consumer():
            yield store.get()

        sim.process(consumer())
        sim.run()
        with pytest.raises(SimulationError):
            store.try_get()

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_len_tracks_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        store.try_put("x")
        store.try_put("y")
        assert len(store) == 2
        store.try_get()
        assert len(store) == 1


class TestResource:
    def test_capacity_one_serializes_access(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        timeline = []

        def user(name, hold):
            yield resource.acquire()
            timeline.append((name, "in", sim.now))
            yield sim.timeout(hold)
            timeline.append((name, "out", sim.now))
            resource.release()

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert timeline == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_waiters_served_in_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def user(name):
            yield resource.acquire()
            order.append(name)
            yield sim.timeout(1.0)
            resource.release()

        for name in ("first", "second", "third"):
            sim.process(user(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_without_acquire_raises(self):
        with pytest.raises(SimulationError):
            Resource(Simulator()).release()

    def test_in_use_counter(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)

        def user():
            yield resource.acquire()

        sim.process(user())
        sim.process(user())
        sim.run()
        assert resource.in_use == 2
