"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store


@st.composite
def delay_lists(draw):
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )


class TestEventOrderingProperties:
    @given(delays=delay_lists())
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fire_times = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda e: fire_times.append(sim.now))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(delays=delay_lists())
    @settings(max_examples=100, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda e: observed.append(sim.now))
        previous = -1.0
        while sim.peek() != float("inf"):
            sim.step()
            assert sim.now >= previous
            previous = sim.now

    @given(delays=delay_lists())
    @settings(max_examples=50, deadline=None)
    def test_equal_delays_preserve_scheduling_order(self, delays):
        # Force ties by rounding every delay to one of 3 values.
        sim = Simulator()
        order = []
        quantized = [round(d) % 3 for d in delays]
        for index, delay in enumerate(quantized):
            sim.timeout(float(delay), value=(delay, index)).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        # Within each delay bucket the original scheduling order survives.
        for bucket in set(quantized):
            indices = [idx for d, idx in order if d == bucket]
            assert indices == sorted(indices)


class TestProcessProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sequential_timeouts_accumulate(self, delays):
        sim = Simulator()
        end_time = []

        def worker():
            for delay in delays:
                yield sim.timeout(delay)
            end_time.append(sim.now)

        sim.process(worker())
        sim.run()
        assert abs(end_time[0] - sum(delays)) < 1e-9 * max(1.0, sum(delays))


class TestStoreProperties:
    @given(items=st.lists(st.integers(), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_store_is_lossless_and_fifo(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=60),
        capacity=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_store_never_exceeds_capacity(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        max_seen = 0

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            nonlocal max_seen
            for _ in items:
                yield sim.timeout(0.1)
                max_seen = max(max_seen, len(store))
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert max_seen <= capacity
