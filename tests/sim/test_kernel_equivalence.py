"""Kernel-equivalence goldens: the optimized event core must be
byte-identical to the pre-optimization kernel.

The speed program (fast event loop, lightweight timer entries,
slotted packets, warm worker pool) is only allowed to change *wall
time*, never behaviour. This suite pins three end-to-end scenarios —
static, dynamic, dynamic+faults — to SHA-256 digests of their canonical
metrics JSON and event-stream JSONL, plus the exact energy totals,
all captured **before** the kernel rewrite. Any ordering drift in the
event heap, a dropped or duplicated timer, or a change to per-packet
bookkeeping moves the bytes and fails here.

These goldens are deliberately separate from ``tests/obs/goldens``:
those pin the observability layer's output format; these pin the
*kernel's* behaviour across rewrites, with their own scenarios and
seeds, so re-blessing one suite cannot silently launder a regression
through the other.

Re-bless after an intentional behaviour change with::

    PYTHONPATH=src python tools/capture_kernel_goldens.py
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import ClientSpec, ExperimentConfig, run_experiment
from repro.faults import FaultPlan, Window
from repro.obs import digest, events_jsonl, metrics_json

GOLDEN_DIR = Path(__file__).parent / "goldens"
DIGEST_FILE = GOLDEN_DIR / "kernel_digests.json"


def _static_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56),
                 ClientSpec("video", video_kbps=256)],
        burst_interval_s=0.1,
        scheduler="static",
        duration_s=2.5,
        warmup_s=0.2,
        start_stagger_s=0.25,
        seed=11,
    )


def _dynamic_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=128),
                 ClientSpec("web"),
                 ClientSpec("ftp", ftp_bytes=64 * 1024)],
        burst_interval_s=0.1,
        duration_s=2.5,
        warmup_s=0.2,
        start_stagger_s=0.25,
        seed=11,
    )


def _dynamic_faults_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=128),
                 ClientSpec("web")],
        burst_interval_s=0.1,
        duration_s=3.0,
        warmup_s=0.2,
        start_stagger_s=0.25,
        seed=11,
        faults=FaultPlan(
            loss_rate=0.04,
            duplicate_rate=0.01,
            outages=(Window(1.0, 1.2),),
        ),
    )


SCENARIOS = {
    "static": _static_config,
    "dynamic": _dynamic_config,
    "dynamic_faults": _dynamic_faults_config,
}


def energy_totals(result) -> dict:
    """The exact (not rounded) energy figures a kernel rewrite must
    reproduce, as plain JSON-stable data."""
    return {
        "avg_saved_pct": result.summary.avg_saved_pct,
        "min_saved_pct": result.summary.min_saved_pct,
        "max_saved_pct": result.summary.max_saved_pct,
        "avg_loss_pct": result.summary.avg_loss_pct,
        "per_client_joules": [
            report.energy_j for report in result.reports
        ],
        "per_client_saved_pct": [
            report.energy_saved_pct for report in result.reports
        ],
        "medium_frames": result.medium_frames,
        "medium_misses": result.medium_misses,
        "schedules_sent": result.schedules_sent,
        "fault_counters": dict(sorted(result.fault_counters.items())),
    }


def run_scenario(name: str) -> dict:
    """One scenario's complete equivalence surface."""
    result = run_experiment(SCENARIOS[name]())
    return {
        "metrics.json": metrics_json(result.obs),
        "events.jsonl": events_jsonl(result.obs),
        "energy": energy_totals(result),
    }


def _stored_digests() -> dict:
    assert DIGEST_FILE.exists(), (
        "kernel goldens missing; capture them with "
        "`PYTHONPATH=src python tools/capture_kernel_goldens.py`"
    )
    return json.loads(DIGEST_FILE.read_text())


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_kernel_equivalence(name):
    produced = run_scenario(name)
    golden = _stored_digests()[name]

    # Energy totals first: a mismatch here gives the most readable
    # failure (exact floats, not hashes).
    assert produced["energy"] == golden["energy"]

    for suffix in ("metrics.json", "events.jsonl"):
        actual = digest(produced[suffix])
        assert actual == golden[suffix], (
            f"{name}.{suffix}: digest {actual} != golden {golden[suffix]} — "
            "the kernel is no longer trace-equivalent; diff against "
            f"tests/sim/goldens/{name}.{suffix}"
        )


@pytest.mark.slow
def test_goldens_match_stored_text():
    """The stored golden text files themselves hash to the recorded
    digests (guards against hand-edits to one but not the other)."""
    digests = _stored_digests()
    for name, entry in digests.items():
        for suffix in ("metrics.json", "events.jsonl"):
            path = GOLDEN_DIR / f"{name}.{suffix}"
            assert path.exists(), f"missing golden text {path.name}"
            assert digest(path.read_text()) == entry[suffix], (
                f"{path.name} does not match its recorded digest"
            )
