"""Unit tests for the trace recorder."""

from repro.sim import TraceRecorder


class TestTraceRecorder:
    def test_record_and_count(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "wnic.transition", state="sleep")
        recorder.record(1.0, "wnic.transition", state="idle")
        recorder.record(2.0, "packet.rx", size=100)
        assert len(recorder) == 3
        assert recorder.count("wnic.transition") == 2

    def test_prefix_query(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "wnic.transition")
        recorder.record(1.0, "wnic.power")
        recorder.record(2.0, "packet.rx")
        assert recorder.count("wnic.") == 2

    def test_time_window_query(self):
        recorder = TraceRecorder()
        for t in (0.0, 1.0, 2.0, 3.0):
            recorder.record(t, "tick")
        rows = list(recorder.query(since=1.0, until=3.0))
        assert [r.time for r in rows] == [1.0, 2.0]

    def test_predicate_query(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "packet.rx", size=10)
        recorder.record(1.0, "packet.rx", size=2000)
        big = list(recorder.query("packet.rx", predicate=lambda r: r.fields["size"] > 100))
        assert len(big) == 1
        assert big[0].fields["size"] == 2000

    def test_records_preserve_fields(self):
        recorder = TraceRecorder()
        row = recorder.record(5.0, "x", a=1, b="two")
        assert row.time == 5.0
        assert row.fields == {"a": 1, "b": "two"}
