"""Heap-ordering properties of the optimized event kernel (hypothesis).

The speed program replaced generator processes and Event-based timers
with a zoo of lightweight heap entries (``Timeout``, ``_Callback``,
``_Call1``, bare ``Event`` pushes). Determinism rests on three heap
invariants that must hold *across every entry kind*, not just the ones
``tests/sim/test_properties.py`` exercises:

* **FIFO within a tie** — entries scheduled at the same (time,
  priority) fire in program order, regardless of which scheduling API
  created them;
* **priority before sequence** — at one instant, every URGENT entry
  fires before any NORMAL entry, and each lane stays FIFO;
* **monotonic clock** — ``now`` never decreases, even when callbacks
  schedule further work mid-run and generation-counter cancellation
  (the kernel's cancel idiom, see ``TcpConnection._arm_timer``) leaves
  stale entries in the heap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.core import NORMAL, URGENT

#: A small palette of delays so draws collide and force heap ties.
TIE_DELAYS = (0.0, 0.25, 0.5, 1.0)

#: The scheduling APIs under test. Each schedules "append marker to
#: ``fired``" through a different heap-entry kind.
ENTRY_KINDS = ("timeout", "call_later", "call_later1", "call_at", "call_at1",
               "event")


def _schedule(sim, kind, delay, fired, marker):
    if kind == "timeout":
        sim.timeout(delay, value=marker).add_callback(
            lambda e: fired.append(e.value)
        )
    elif kind == "call_later":
        sim.call_later(delay, lambda m=marker: fired.append(m))
    elif kind == "call_later1":
        sim.call_later1(delay, fired.append, marker)
    elif kind == "call_at":
        sim.call_at(sim.now + delay, lambda m=marker: fired.append(m))
    elif kind == "call_at1":
        sim.call_at1(sim.now + delay, fired.append, marker)
    elif kind == "event":
        event = sim.event()
        event.add_callback(lambda e: fired.append(e.value))
        if delay == 0.0:
            event.succeed(marker)
        else:
            sim.call_later(delay, lambda e=event, m=marker: e.succeed(m))
    else:  # pragma: no cover - guards against palette drift
        raise AssertionError(kind)


schedules = st.lists(
    st.tuples(st.sampled_from(ENTRY_KINDS), st.sampled_from(TIE_DELAYS)),
    min_size=1,
    max_size=40,
)


class TestSameTimeFifo:
    @given(ops=schedules)
    @settings(max_examples=100, deadline=None)
    def test_ties_fire_in_program_order_across_entry_kinds(self, ops):
        """Same (time, priority) ⇒ program order, whatever the entry kind.

        Deferred ``event`` entries re-push at fire time, which lands
        them *after* direct pushes at the same instant — so the FIFO
        claim is checked per delay bucket within each push generation
        (direct pushes vs. succeed-at-fire-time pushes) rather than
        across the whole timeline.
        """
        sim = Simulator()
        fired = []
        for index, (kind, delay) in enumerate(ops):
            deferred = kind == "event" and delay > 0.0
            _schedule(sim, kind, delay, fired, (delay, deferred, index))
        sim.run()
        assert len(fired) == len(ops)
        for delay in TIE_DELAYS:
            for deferred in (False, True):
                indices = [
                    i for d, late, i in fired if d == delay and late == deferred
                ]
                assert indices == sorted(indices)

    @given(ops=schedules)
    @settings(max_examples=50, deadline=None)
    def test_one_push_per_schedule_call(self, ops):
        """Every scheduling call costs exactly one heap push up front.

        The seq counter is the kernel's push odometer; lightweight
        entries must not silently double-push (that would perturb
        tie-breaking for every later entry).
        """
        sim = Simulator()
        fired = []
        for index, (kind, delay) in enumerate(ops):
            _schedule(sim, kind, delay, fired, index)
        assert sim._seq == len(ops)
        assert len(sim._heap) == len(ops)
        # Deferred events push once more when succeed() runs mid-run.
        deferred = sum(1 for kind, d in ops if kind == "event" and d > 0.0)
        sim.run()
        assert sim._seq == len(ops) + deferred


class TestPriorityTieBreaking:
    @given(lanes=st.lists(st.booleans(), min_size=1, max_size=30),
           delay=st.sampled_from(TIE_DELAYS))
    @settings(max_examples=100, deadline=None)
    def test_urgent_lane_drains_before_normal_at_same_instant(
        self, lanes, delay
    ):
        """All URGENT entries at time t fire before any NORMAL entry at
        t, and each lane individually preserves program order."""
        sim = Simulator()
        fired = []
        for index, urgent in enumerate(lanes):
            event = sim.event()
            event.add_callback(lambda e, m=(urgent, index): fired.append(m))
            sim._enqueue(event, delay, URGENT if urgent else NORMAL)
        sim.run()
        assert len(fired) == len(lanes)
        boundary = sum(1 for urgent in lanes if urgent)
        assert all(urgent for urgent, _ in fired[:boundary])
        assert not any(urgent for urgent, _ in fired[boundary:])
        for lane in (True, False):
            indices = [i for urgent, i in fired if urgent == lane]
            assert indices == sorted(indices)

    @given(delay_pairs=st.lists(st.sampled_from(TIE_DELAYS), min_size=1,
                                max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_time_dominates_priority(self, delay_pairs):
        """An URGENT entry never jumps ahead of an earlier NORMAL one."""
        sim = Simulator()
        fired = []
        for delay in delay_pairs:
            sim.call_later(delay, lambda d=delay: fired.append(("normal", d)))
            event = sim.event()
            event.add_callback(lambda e, d=delay: fired.append(("urgent", d)))
            sim._enqueue(event, delay + 0.125, URGENT)
        sim.run()
        observed = [d for _lane, d in fired]
        assert observed == sorted(observed)


@st.composite
def interleavings(draw):
    """A program of schedule/cancel/nest ops driven from callbacks."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(("schedule", "cancel", "nest")),
                st.sampled_from(TIE_DELAYS),
            ),
            min_size=1,
            max_size=30,
        )
    )


class TestMonotonicNow:
    @given(ops=interleavings())
    @settings(max_examples=100, deadline=None)
    def test_now_is_monotonic_under_schedule_cancel_interleavings(self, ops):
        """``now`` never decreases while timers are armed, re-armed and
        cancelled via the generation-counter idiom mid-run."""
        sim = Simulator()
        observed = []
        state = {"generation": 0}

        def fire(generation):
            observed.append(sim.now)
            if generation != state["generation"]:
                return  # cancelled: stale generation no-ops

        for kind, delay in ops:
            if kind == "schedule":
                sim.call_at1(sim.now + delay, fire, state["generation"])
            elif kind == "cancel":
                # The kernel has no heap removal: cancellation bumps the
                # generation so armed timers no-op, exactly like TCP's
                # RTO/delayed-ACK timers.
                state["generation"] += 1
            else:  # nest: a callback that schedules more work when run
                sim.call_later1(
                    delay,
                    lambda d: sim.call_later1(
                        d, lambda _: observed.append(sim.now), None
                    ),
                    delay,
                )
        sim.run()
        assert observed == sorted(observed)
        assert all(t >= 0.0 for t in observed)

    @given(ops=interleavings())
    @settings(max_examples=50, deadline=None)
    def test_step_matches_run(self, ops):
        """Stepping the heap one entry at a time visits the same fire
        times, in the same order, as ``run()`` (whose loop is a
        hand-inlined copy of ``step``)."""

        def build(sim, log):
            for index, (kind, delay) in enumerate(ops):
                if kind == "cancel":
                    continue
                sim.call_later1(delay, lambda m: log.append((sim.now, m)), index)

        run_sim, run_log = Simulator(), []
        build(run_sim, run_log)
        run_sim.run()

        step_sim, step_log = Simulator(), []
        build(step_sim, step_log)
        previous = -1.0
        while step_sim.peek() != float("inf"):
            step_sim.step()
            assert step_sim.now >= previous
            previous = step_sim.now
        assert step_log == run_log
