"""Property-based tests for the observability invariants.

Two levels:

* registry-level (tier 1): histogram accounting and snapshot
  canonicalisation hold for arbitrary observation sequences;
* simulation-level (``slow``): span nesting and WNIC residency
  invariants hold across seeds on a real (small) experiment.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.runner import ClientSpec, ExperimentConfig, run_experiment
from repro.obs import MetricsRegistry
from repro.obs.metrics import DEPTH_BUCKETS, RATIO_BUCKETS

observations = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    max_size=200,
)


class TestRegistryProperties:
    @given(values=observations)
    @settings(max_examples=100, deadline=None)
    def test_bucket_counts_sum_to_observation_count(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=RATIO_BUCKETS)
        for value in values:
            histogram.observe(value)
        assert sum(histogram.counts) == histogram.count == len(values)
        assert histogram.total == pytest.approx(sum(values))

    @given(values=observations)
    @settings(max_examples=50, deadline=None)
    def test_snapshot_is_label_order_independent(self, values):
        left, right = MetricsRegistry(), MetricsRegistry()
        for value in values:
            left.histogram(
                "h", buckets=DEPTH_BUCKETS, ap="ap", client="c"
            ).observe(value)
            right.histogram(
                "h", buckets=DEPTH_BUCKETS, client="c", ap="ap"
            ).observe(value)
        assert left.snapshot() == right.snapshot()
        assert left.to_json() == right.to_json()

    @given(
        pairs=st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(0, 5)),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_counter_totals_are_interleaving_independent(self, pairs):
        in_order, sorted_order = MetricsRegistry(), MetricsRegistry()
        for name, n in pairs:
            in_order.counter(name).inc(n)
        for name, n in sorted(pairs):
            sorted_order.counter(name).inc(n)
        assert in_order.snapshot() == sorted_order.snapshot()

    def test_histogram_redeclared_with_other_buckets_is_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=RATIO_BUCKETS)
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=DEPTH_BUCKETS)


@lru_cache(maxsize=None)
def _run(seed: int):
    config = ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56), ClientSpec("web")],
        burst_interval_s=0.1,
        duration_s=1.5,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=seed,
    )
    return run_experiment(config)


@pytest.mark.slow
class TestSimulationProperties:
    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=5, deadline=None)
    def test_slot_spans_nest_inside_interval_spans(self, seed):
        spans = _run(seed).obs.spans
        intervals = [s for s in spans if s.name == "interval"]
        slots = [s for s in spans if s.name == "slot"]
        assert slots, "dynamic run produced no burst-slot spans"
        for slot in slots:
            assert any(
                interval.start <= slot.start
                and slot.end <= interval.end + 1e-9
                for interval in intervals
            ), f"slot span {slot} crosses every interval boundary"

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=5, deadline=None)
    def test_residency_gauges_sum_to_sim_duration(self, seed):
        result = _run(seed)
        snapshot = result.metrics
        gauges = {
            (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
            for g in snapshot["gauges"]
        }
        duration = gauges[("sim.duration_s", ())]
        clients = {
            dict(labels)["client"]
            for (name, labels) in gauges
            if name == "wnic.residency_s"
        }
        assert clients, "no residency gauges recorded"
        for client in sorted(clients):
            awake = gauges[
                ("wnic.residency_s", (("client", client), ("state", "awake")))
            ]
            sleep = gauges[
                ("wnic.residency_s", (("client", client), ("state", "sleep")))
            ]
            assert awake + sleep == pytest.approx(duration, abs=1e-9)
            assert 0.0 <= awake <= duration + 1e-9

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=5, deadline=None)
    def test_every_histogram_in_a_run_balances(self, seed):
        snapshot = _run(seed).metrics
        assert snapshot["histograms"], "run recorded no histograms"
        for histogram in snapshot["histograms"]:
            assert sum(histogram["counts"]) == histogram["count"]
