"""Golden-trace regression tests.

Four canonical scenarios are pinned down to SHA-256 digests of their
canonical metrics JSON and event-stream JSONL. Any change to
scheduling, the network model, fault injection or the instrumentation
itself moves the bytes and fails here with a diff against the stored
golden text.

After an *intentional* behaviour change, re-bless with::

    PYTHONPATH=src python -m pytest tests/obs/test_goldens.py \
        -m slow --update-goldens
"""

import difflib
import json
from pathlib import Path

import pytest

from repro.experiments.runner import ClientSpec, ExperimentConfig, run_experiment
from repro.faults import FaultPlan, Window
from repro.net.channel import ChannelPlan
from repro.obs import digest, events_jsonl, metrics_json

GOLDEN_DIR = Path(__file__).parent / "goldens"
DIGEST_FILE = GOLDEN_DIR / "digests.json"
DIFF_LINES_SHOWN = 60


def _static_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56)] * 2,
        burst_interval_s=0.1,
        scheduler="static",
        duration_s=2.0,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
    )


def _dynamic_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56), ClientSpec("web")],
        burst_interval_s=0.1,
        duration_s=2.0,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
    )


def _dynamic_faults_config() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56), ClientSpec("web")],
        burst_interval_s=0.1,
        duration_s=2.5,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
        faults=FaultPlan(loss_rate=0.05, outages=(Window(0.8, 1.0),)),
    )


def _dynamic_channel_config() -> ExperimentConfig:
    """Channel-aware policy over a fading channel: pins the per-client
    channel-state tracks (``channel.transition`` events, bad-dwell
    spans) and the scheduler's policy-decision counters."""
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56)] * 2,
        burst_interval_s=0.1,
        duration_s=2.5,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
        policy="channel",
        channel=ChannelPlan(
            p_good_bad=0.3, p_bad_good=0.4, loss_bad=0.85, epoch_s=0.2
        ),
    )


SCENARIOS = {
    "static": _static_config,
    "dynamic": _dynamic_config,
    "dynamic_faults": _dynamic_faults_config,
    "dynamic_channel": _dynamic_channel_config,
}


def _exports(name: str) -> dict[str, str]:
    result = run_experiment(SCENARIOS[name]())
    return {
        "metrics.json": metrics_json(result.obs),
        "events.jsonl": events_jsonl(result.obs),
    }


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name, request):
    produced = _exports(name)
    digests = (
        json.loads(DIGEST_FILE.read_text()) if DIGEST_FILE.exists() else {}
    )

    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for suffix, text in produced.items():
            (GOLDEN_DIR / f"{name}.{suffix}").write_text(text)
        digests[name] = {s: digest(t) for s, t in produced.items()}
        DIGEST_FILE.write_text(
            json.dumps(digests, indent=2, sort_keys=True) + "\n"
        )
        return

    assert name in digests, (
        f"no golden digests recorded for {name!r}; "
        "bless them with --update-goldens"
    )
    for suffix, text in produced.items():
        expected = digests[name][suffix]
        actual = digest(text)
        if actual == expected:
            continue
        golden_path = GOLDEN_DIR / f"{name}.{suffix}"
        stored = golden_path.read_text() if golden_path.exists() else ""
        diff_lines = list(
            difflib.unified_diff(
                stored.splitlines(),
                text.splitlines(),
                fromfile=f"goldens/{golden_path.name}",
                tofile="this run",
                lineterm="",
            )
        )
        shown = "\n".join(diff_lines[:DIFF_LINES_SHOWN])
        if len(diff_lines) > DIFF_LINES_SHOWN:
            shown += f"\n... ({len(diff_lines) - DIFF_LINES_SHOWN} more diff lines)"
        pytest.fail(
            f"golden mismatch for {name}/{suffix}: "
            f"expected sha256 {expected[:12]}…, got {actual[:12]}…\n"
            f"{shown}\n"
            "If this change is intentional, re-bless with "
            "--update-goldens (see module docstring)."
        )


@pytest.mark.slow
def test_goldens_are_reproducible():
    """The digest of a fresh run matches a second fresh run."""
    first = _exports("dynamic")
    second = _exports("dynamic")
    assert {s: digest(t) for s, t in first.items()} == {
        s: digest(t) for s, t in second.items()
    }
