"""Two same-seed runs must produce byte-identical observability output.

This is the acceptance gate for the whole layer: metrics snapshots,
the event-stream JSONL and the Chrome-trace timeline are all pure
functions of ``(plan, seed)``.
"""

from repro.cli import main
from repro.experiments.runner import ClientSpec, ExperimentConfig, run_experiment
from repro.obs import chrome_trace_json, events_jsonl, metrics_json


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        clients=[ClientSpec("video", video_kbps=56)] * 2,
        burst_interval_s=0.1,
        duration_s=2.0,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def exports(result) -> tuple[str, str, str]:
    return (
        metrics_json(result.obs),
        events_jsonl(result.obs),
        chrome_trace_json(result.obs),
    )


def test_same_seed_runs_are_byte_identical():
    first = exports(run_experiment(small_config()))
    second = exports(run_experiment(small_config()))
    assert first == second


def test_different_seeds_change_the_event_stream():
    """The oracle has teeth: a different seed moves the bytes."""
    first = events_jsonl(run_experiment(small_config()).obs)
    other = events_jsonl(run_experiment(small_config(seed=4)).obs)
    assert first != other


def test_cli_run_exports_are_byte_identical(tmp_path, capsys):
    outputs = []
    for run_index in (0, 1):
        metrics = tmp_path / f"metrics-{run_index}.json"
        events = tmp_path / f"events-{run_index}.jsonl"
        code = main(
            [
                "run",
                "--clients", "video:56,video:56",
                "--interval", "100ms",
                "--duration", "2",
                "--seed", "3",
                "--metrics-out", str(metrics),
                "--events-out", str(events),
            ]
        )
        assert code == 0
        outputs.append((metrics.read_bytes(), events.read_bytes()))
    capsys.readouterr()
    assert outputs[0] == outputs[1]
    assert outputs[0][0]  # non-empty metrics snapshot


def test_trace_subcommand_writes_a_timeline(tmp_path, capsys):
    out = tmp_path / "timeline.json"
    code = main(
        [
            "trace",
            "--clients", "video:56",
            "--interval", "100ms",
            "--duration", "1",
            "--trace-out", str(out),
        ]
    )
    assert code == 0
    text = out.read_text()
    assert '"traceEvents"' in text
    assert "perfetto" in capsys.readouterr().out.lower()
