"""Error-taxonomy properties: every class is a catchable ReproError."""

import inspect

import pytest

from repro import errors
from repro.errors import ReproError

ALL_ERRORS = [
    obj
    for _, obj in inspect.getmembers(errors, inspect.isclass)
    if issubclass(obj, Exception)
]


def test_taxonomy_is_nonempty():
    assert len(ALL_ERRORS) >= 10


@pytest.mark.parametrize("cls", ALL_ERRORS, ids=lambda c: c.__name__)
def test_every_error_is_a_repro_error(cls):
    assert issubclass(cls, ReproError)


@pytest.mark.parametrize("cls", ALL_ERRORS, ids=lambda c: c.__name__)
def test_catchable_and_constructible(cls):
    with pytest.raises(ReproError):
        raise cls("boom")
    assert "boom" in str(cls("boom"))


@pytest.mark.parametrize("cls", ALL_ERRORS, ids=lambda c: c.__name__)
def test_no_error_shadows_a_builtin(cls):
    """Taxonomy names must not mask builtins (ConnectionError_ etc.)."""
    import builtins

    assert not hasattr(builtins, cls.__name__) or cls.__name__ == "Exception"


def test_connection_error_is_not_the_builtin():
    assert not issubclass(ConnectionError, errors.ConnectionError_)
    assert not issubclass(errors.ConnectionError_, ConnectionError)


def test_hierarchy_structure():
    assert issubclass(errors.ProcessError, errors.SimulationError)
    assert issubclass(errors.AddressError, errors.NetworkError)
    assert issubclass(errors.ConnectionError_, errors.NetworkError)
    assert issubclass(errors.SocketError, errors.NetworkError)


def test_every_error_has_docstring():
    for cls in ALL_ERRORS:
        assert cls.__doc__, f"{cls.__name__} lacks a docstring"
