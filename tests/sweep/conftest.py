"""Register the test-only sweep tasks (idempotently) for this package."""

from repro.sweep import register_task

for name, target in {
    "test-double": "tests.sweep._fixtures:double",
    "test-maybe-none": "tests.sweep._fixtures:maybe_none",
    "test-fail": "tests.sweep._fixtures:fail_always",
    "test-fail-once": "tests.sweep._fixtures:fail_once",
}.items():
    register_task(name, target, replace=True)
