"""Warm-pool unit tests: chunking math, registry sync, pool sizing.

These cover the pure logic of :mod:`repro.sweep.pool` without spawning
workers (executor creation is lazy, so a :class:`WarmPool` object is
cheap); the end-to-end dispatch paths — including rebuild after a dead
worker — are exercised by the engine's parallel tests.
"""

import pytest

from repro.errors import SweepError
from repro.sweep import pool as pool_mod
from repro.sweep.pool import CHUNKS_PER_WORKER, WarmPool, chunk_runs, shared_pool
from repro.sweep.tasks import task_targets


class TestChunkRuns:
    def test_empty_and_negative_counts_yield_no_chunks(self):
        assert chunk_runs(0, 4) == []
        assert chunk_runs(-3, 4) == []

    def test_bounds_are_contiguous_and_cover_every_run(self):
        for count in (1, 2, 7, 15, 16, 100):
            for workers in (1, 2, 4, 8):
                bounds = chunk_runs(count, workers)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == count
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                assert all(stop > start for start, stop in bounds)

    def test_chunk_count_targets_chunks_per_worker(self):
        bounds = chunk_runs(100, 2)
        assert len(bounds) == 2 * CHUNKS_PER_WORKER

    def test_never_more_chunks_than_runs(self):
        assert len(chunk_runs(3, 8)) == 3

    def test_sizes_differ_by_at_most_one(self):
        for count, workers in ((15, 2), (17, 4), (101, 8)):
            sizes = [stop - start for start, stop in chunk_runs(count, workers)]
            assert max(sizes) - min(sizes) <= 1


class TestTaskTargets:
    def test_returns_registered_targets(self):
        targets = task_targets({"experiment"})
        assert targets == {"experiment": "repro.experiments.runner:run_experiment"}

    def test_unknown_name_fails_in_the_parent(self):
        with pytest.raises(SweepError, match="unknown sweep task"):
            task_targets({"experiment", "no-such-task"})


class TestSharedPool:
    @pytest.fixture(autouse=True)
    def _isolate_singleton(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_shared", None)

    def test_first_call_creates_the_pool(self):
        pool = shared_pool(2)
        assert isinstance(pool, WarmPool)
        assert pool.workers == 2
        assert not pool.alive  # executor is lazy: no workers spawned yet

    def test_same_size_reuses_the_pool(self):
        assert shared_pool(2) is shared_pool(2)

    def test_larger_request_rebuilds_bigger(self):
        small = shared_pool(1)
        big = shared_pool(3)
        assert big is not small
        assert big.workers == 3

    def test_smaller_request_keeps_the_larger_pool(self):
        big = shared_pool(4)
        assert shared_pool(2) is big
