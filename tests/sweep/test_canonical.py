"""Canonical JSON: the deterministic cache-key material."""

import dataclasses

import pytest

from repro.errors import SweepError
from repro.experiments.runner import ClientSpec, ExperimentConfig
from repro.sweep import canonical_json, canonical_value


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: float


class TestCanonicalValue:
    def test_primitives_pass_through(self):
        assert canonical_value(3) == 3
        assert canonical_value(2.5) == 2.5
        assert canonical_value("s") == "s"
        assert canonical_value(None) is None
        assert canonical_value(True) is True

    def test_tuples_become_lists(self):
        assert canonical_value((1, 2, (3,))) == [1, 2, [3]]

    def test_sets_are_sorted(self):
        assert canonical_value({3, 1, 2}) == [1, 2, 3]

    def test_dataclasses_are_tagged_with_their_type(self):
        value = canonical_value(Point(1, 2.0))
        assert value["__dataclass__"].endswith("Point")
        assert value["x"] == 1 and value["y"] == 2.0

    def test_unencodable_values_raise(self):
        with pytest.raises(SweepError):
            canonical_value(lambda: None)
        with pytest.raises(SweepError):
            canonical_value(object())

    def test_non_primitive_dict_keys_raise(self):
        with pytest.raises(SweepError):
            canonical_value({(1, 2): "v"})


class TestCanonicalJson:
    def test_key_order_is_normalized(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))

    def test_experiment_config_roundtrips_stably(self):
        config = ExperimentConfig(
            clients=[ClientSpec("video", video_kbps=56), ClientSpec("web")],
            burst_interval_s=0.5,
            duration_s=10.0,
            seed=3,
        )
        text = canonical_json({"config": config})
        assert text == canonical_json({"config": config})
        assert "ExperimentConfig" in text and "ClientSpec" in text

    def test_config_changes_change_the_json(self):
        base = ExperimentConfig(
            clients=[ClientSpec("web")], burst_interval_s=0.5,
            duration_s=10.0, seed=0,
        )
        changed = dataclasses.replace(base, seed=1)
        assert canonical_json(base) != canonical_json(changed)

    def test_distinct_dataclass_types_never_collide(self):
        @dataclasses.dataclass(frozen=True)
        class Other:
            x: int
            y: float

        assert canonical_json(Point(1, 2.0)) != canonical_json(Other(1, 2.0))
