"""Driver integration: warm-cache artifacts perform zero simulations."""

import pytest

from repro.experiments import figures
from repro.experiments.baselines import psm_comparison
from repro.experiments.tables import drop_effect_dummynet
from repro.sweep import ResultCache, SweepEngine


class TestWarmCacheDrivers:
    def test_warm_figure6_runs_zero_simulations(self, tmp_path):
        """Cheap tier-1 stand-in for the figure-4 acceptance test."""
        kwargs = dict(seed=0, quick=True, early_amounts_ms=(0, 6))
        cold_engine = SweepEngine(cache=ResultCache(tmp_path))
        cold = figures.figure6(engine=cold_engine, **kwargs)
        assert cold_engine.last_report.executed == 2

        warm_engine = SweepEngine(cache=ResultCache(tmp_path))
        warm = figures.figure6(engine=warm_engine, **kwargs)
        report = warm_engine.last_report
        assert report.simulation_runs == 0
        assert report.cache_hits == report.total == 2
        assert warm == cold

    @pytest.mark.slow
    def test_warm_figure4_quick_runs_zero_simulations(self, tmp_path):
        """The acceptance criterion, verbatim: a warm-cache
        ``repro figure 4 --quick`` performs zero simulation runs."""
        cold_engine = SweepEngine(cache=ResultCache(tmp_path))
        cold = figures.figure4(seed=1, quick=True, engine=cold_engine)
        assert cold_engine.last_report.executed == 15

        warm_engine = SweepEngine(cache=ResultCache(tmp_path))
        warm = figures.figure4(seed=1, quick=True, engine=warm_engine)
        report = warm_engine.last_report
        assert report.simulation_runs == 0
        assert report.cache_hits == report.total == 15
        assert warm == cold

    def test_warm_pareto_quick_runs_zero_simulations(self, tmp_path):
        """The policy-family acceptance criterion: a warm-cache
        ``repro figure pareto --policy all --quick`` performs zero
        simulations. The driver issues *two* sweeps (sim rows, then
        model rows), so the assertion must cover every report of the
        run — ``last_report`` alone only sees the model sweep."""
        kwargs = dict(seed=0, quick=True)
        cold_engine = SweepEngine(cache=ResultCache(tmp_path))
        cold = figures.pareto(engine=cold_engine, **kwargs)
        # 3 policies simulated + (3 policies + DP optimum) modeled.
        assert [r.executed for r in cold_engine.reports] == [3, 4]

        warm_engine = SweepEngine(cache=ResultCache(tmp_path))
        warm = figures.pareto(engine=warm_engine, **kwargs)
        assert len(warm_engine.reports) == 2
        for report in warm_engine.reports:
            assert report.simulation_runs == 0
            assert report.cache_hits == report.total
        assert warm == cold

        sim = [row for row in warm if row["source"] == "sim"]
        model = [row for row in warm if row["source"] == "model"]
        assert [row["policy"] for row in sim] == ["dynamic", "channel", "joint"]
        assert [row["policy"] for row in model] == [
            "dynamic", "channel", "joint", "optimal",
        ]
        # The DP optimum anchors the model front from below.
        costs = {row["policy"]: row["mean_total_cost"] for row in model}
        assert costs["optimal"] <= min(costs.values()) + 1e-9

    def test_dummynet_quick_kwarg_shrinks_the_transfer(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        row = drop_effect_dummynet(seed=0, quick=True, engine=engine)
        assert row["slowdown_fraction"] > 0
        # quick uses a 1 MiB transfer; both runs executed, none cached.
        assert engine.last_report.executed == 2

        warm = SweepEngine(cache=ResultCache(tmp_path))
        again = drop_effect_dummynet(seed=0, quick=True, engine=warm)
        assert warm.last_report.simulation_runs == 0
        assert again == row

    def test_psm_comparison_caches_through_the_engine(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        rows = psm_comparison(seed=0, quick=True, engine=engine)
        assert [row["policy"] for row in rows] == ["naive", "psm", "proxy"]
        warm = SweepEngine(cache=ResultCache(tmp_path))
        again = psm_comparison(seed=0, quick=True, engine=warm)
        assert warm.last_report.simulation_runs == 0
        assert again == rows
