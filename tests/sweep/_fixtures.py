"""Module-level task functions for the sweep engine tests.

They live in their own importable module (not a test file) so worker
processes can re-resolve them by ``"module:qualname"`` name.
"""

from __future__ import annotations

import pathlib


def double(x: int) -> int:
    return 2 * x


def maybe_none(x: int) -> int | None:
    """Returns None for even inputs — exercises cached-None handling."""
    return None if x % 2 == 0 else x


def fail_always(x: int) -> int:
    raise ValueError(f"boom {x}")


def fail_once(marker: str, x: int) -> int:
    """Fails on the first attempt, succeeds once the marker exists."""
    path = pathlib.Path(marker)
    if path.exists():
        return x
    path.write_text("attempted")
    raise RuntimeError("first attempt fails")
