"""SweepSpec expansion: ordering, grids, validation."""

import pytest

from repro.errors import SweepError
from repro.experiments.runner import ClientSpec, ExperimentConfig
from repro.sweep import RunSpec, SweepSpec


def _base() -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("web")], burst_interval_s=0.5,
        duration_s=5.0, seed=0,
    )


class TestFromTasks:
    def test_runs_are_indexed_in_order(self):
        spec = SweepSpec.from_tasks(
            "s", "test-double", [{"x": 1}, {"x": 2}],
            labels=[{"n": "a"}, {"n": "b"}],
        )
        assert [run.index for run in spec] == [0, 1]
        assert spec.runs[1].params == {"x": 2}
        assert spec.runs[1].label == {"n": "b"}

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec.from_tasks("s", "test-double", [{"x": 1}], labels=[])

    def test_non_dense_indices_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(
                name="s",
                runs=(RunSpec(index=1, task="test-double", params={"x": 1}),),
            )


class TestGrid:
    def test_axes_product_with_seeds_varying_fastest(self):
        spec = SweepSpec.grid(
            "g", _base(),
            axes={"burst_interval_s": [0.1, 0.5]},
            seeds=(0, 1),
        )
        labels = [dict(run.label) for run in spec]
        assert labels == [
            {"burst_interval_s": 0.1, "seed": 0},
            {"burst_interval_s": 0.1, "seed": 1},
            {"burst_interval_s": 0.5, "seed": 0},
            {"burst_interval_s": 0.5, "seed": 1},
        ]
        configs = [run.params["config"] for run in spec]
        assert [c.seed for c in configs] == [0, 1, 0, 1]
        assert [c.burst_interval_s for c in configs] == [0.1, 0.1, 0.5, 0.5]

    def test_multi_axis_expansion_order(self):
        spec = SweepSpec.grid(
            "g", _base(),
            axes={"burst_interval_s": [0.1, 0.5], "early_s": [0.0, 0.006]},
        )
        assert len(spec) == 4
        first, second = spec.runs[0], spec.runs[1]
        assert first.label["burst_interval_s"] == 0.1
        assert first.label["early_s"] == 0.0
        assert second.label["early_s"] == 0.006

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec.grid("g", _base(), axes={"not_a_field": [1]})

    def test_non_dataclass_base_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec.grid("g", {"seed": 0}, axes={})

    def test_empty_seeds_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec.grid("g", _base(), axes={}, seeds=())


class TestExperiments:
    def test_wraps_configs_under_the_experiment_task(self):
        config = _base()
        spec = SweepSpec.experiments("e", [config])
        assert spec.runs[0].task == "experiment"
        assert spec.runs[0].params == {"config": config}
