"""CLI surface of the sweep subsystem, plus the argparse guard rails."""

import json

import pytest

from repro.cli import main, parse_seeds
from repro.errors import ConfigurationError


class TestParseSeeds:
    def test_comma_list(self):
        assert parse_seeds("0,2,5") == [0, 2, 5]

    def test_range(self):
        assert parse_seeds("0:3") == [0, 1, 2]

    def test_mixed(self):
        assert parse_seeds("7,0:2") == [7, 0, 1]

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_seeds("one:two")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_seeds(" , ")


class TestUnknownArtifactNames:
    """Unknown figures/tables die with a one-line parser error, not a
    KeyError traceback."""

    def test_unknown_figure_number(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "9"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: '9'" in err

    def test_unknown_table_name(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table", "no-such-table"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'no-such-table'" in err


class TestSweepCommand:
    def _run(self, capsys, *extra):
        code = main([
            "sweep", "--clients", "video:56", "--intervals", "100ms",
            "--seeds", "0:2", "--duration", "4", "--json", *extra,
        ])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_json_carries_rows_and_report(self, capsys, tmp_path):
        data = self._run(capsys, "--cache-dir", str(tmp_path))
        assert len(data["rows"]) == 2
        assert data["report"]["total"] == 2
        assert data["report"]["executed"] == 2
        assert data["report"]["cache_hits"] == 0
        assert {"interval", "seed", "avg_saved_pct"} <= set(data["rows"][0])

    def test_second_invocation_is_all_cache_hits(self, capsys, tmp_path):
        cold = self._run(capsys, "--cache-dir", str(tmp_path))
        warm = self._run(capsys, "--cache-dir", str(tmp_path))
        assert warm["report"]["cache_hits"] == 2
        assert warm["report"]["executed"] == 0
        assert warm["rows"] == cold["rows"]

    def test_no_cache_always_executes(self, capsys, tmp_path):
        self._run(capsys, "--cache-dir", str(tmp_path))
        again = self._run(
            capsys, "--cache-dir", str(tmp_path), "--no-cache"
        )
        assert again["report"]["executed"] == 2
        assert again["report"]["cache_hits"] == 0

    def test_parallel_jobs_match_serial_rows(self, capsys, tmp_path):
        serial = self._run(capsys, "--no-cache")
        parallel = self._run(capsys, "--no-cache", "--jobs", "2")
        assert parallel["rows"] == serial["rows"]
        assert parallel["report"]["jobs"] == 2


class TestFigureCommandCache:
    @pytest.mark.slow
    def test_figure6_quick_warm_rerun_prints_identical_rows(
        self, capsys, tmp_path
    ):
        argv = [
            "figure", "6", "--quick", "--json",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
