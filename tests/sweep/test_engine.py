"""SweepEngine: serial/parallel identity, retries, isolation, metrics."""

import pickle

import pytest

from repro.errors import ConfigurationError, SweepExecutionError
from repro.experiments.runner import ClientSpec, ExperimentConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import SimRecorder
from repro.sweep import ResultCache, RunSpec, SweepEngine, SweepSpec


def _double_spec(n: int = 5) -> SweepSpec:
    return SweepSpec.from_tasks(
        "doubles", "test-double", [{"x": x} for x in range(n)]
    )


class TestValidation:
    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(jobs=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(retries=-1)


class TestSerialExecution:
    def test_results_in_spec_order(self):
        outcome = SweepEngine().run(_double_spec())
        assert outcome.results == [0, 2, 4, 6, 8]
        assert outcome.report.total == 5
        assert outcome.report.executed == 5
        assert outcome.report.cache_hits == 0

    def test_failure_raises_with_traceback(self):
        spec = SweepSpec.from_tasks(
            "fails", "test-fail", [{"x": 1}]
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            SweepEngine(retries=0).run(spec)
        assert "boom 1" in str(excinfo.value)
        assert "1 run(s) failed" in str(excinfo.value)

    def test_one_failure_does_not_stop_other_runs(self):
        spec = SweepSpec(
            name="mixed",
            runs=(
                RunSpec(index=0, task="test-double", params={"x": 1}),
                RunSpec(index=1, task="test-fail", params={"x": 9}),
                RunSpec(index=2, task="test-double", params={"x": 3}),
            ),
        )
        outcome = SweepEngine(allow_failures=True, retries=0).run(spec)
        assert outcome.results == [2, None, 6]
        assert outcome.report.executed == 2
        assert outcome.report.failures == 1

    def test_allow_failures_yields_none_results(self):
        spec = SweepSpec.from_tasks(
            "fails", "test-fail", [{"x": 1}, {"x": 2}]
        )
        outcome = SweepEngine(allow_failures=True, retries=0).run(spec)
        assert outcome.results == [None, None]
        assert outcome.report.failures == 2
        records = outcome.report.runs
        assert all("boom" in record.error for record in records)

    def test_bounded_retry_recovers_a_flaky_run(self, tmp_path):
        marker = tmp_path / "attempted"
        spec = SweepSpec.from_tasks(
            "flaky", "test-fail-once",
            [{"marker": str(marker), "x": 7}],
        )
        outcome = SweepEngine(retries=1).run(spec)
        assert outcome.results == [7]
        assert outcome.report.retries == 1
        assert outcome.report.runs[0].attempts == 2

    def test_retries_are_bounded(self):
        spec = SweepSpec.from_tasks("fails", "test-fail", [{"x": 3}])
        with pytest.raises(SweepExecutionError):
            SweepEngine(retries=2).run(spec)


class TestParallelExecution:
    def test_parallel_results_byte_identical_to_serial(self):
        serial = SweepEngine(jobs=1).run(_double_spec(6))
        parallel = SweepEngine(jobs=2).run(_double_spec(6))
        assert pickle.dumps(serial.results) == pickle.dumps(parallel.results)
        assert parallel.report.jobs == 2
        assert parallel.report.executed == 6

    def test_parallel_experiment_grid_byte_identical_to_serial(self):
        configs = [
            ExperimentConfig(
                clients=[ClientSpec("video", video_kbps=56)],
                burst_interval_s=0.1,
                duration_s=5.0,
                seed=seed,
            )
            for seed in (0, 1)
        ]
        spec = SweepSpec.experiments("identity-grid", configs)
        serial = SweepEngine(jobs=1).run(spec)
        parallel = SweepEngine(jobs=2).run(spec)
        assert pickle.dumps(serial.results) == pickle.dumps(parallel.results)

    def test_parallel_failure_isolation_and_retry_exhaustion(self):
        spec = SweepSpec.from_tasks(
            "par-fails", "test-fail", [{"x": 1}, {"x": 2}, {"x": 3}]
        )
        outcome = SweepEngine(
            jobs=2, allow_failures=True, retries=1
        ).run(spec)
        assert outcome.results == [None, None, None]
        assert outcome.report.failures == 3
        assert all(r.attempts == 2 for r in outcome.report.runs)

    def test_parallel_writes_populate_the_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(jobs=2, cache=cache).run(_double_spec(4))
        warm = SweepEngine(jobs=2, cache=cache).run(_double_spec(4))
        assert warm.report.cache_hits == 4
        assert warm.report.executed == 0


class TestReporting:
    def test_reports_accumulate_and_combine(self):
        engine = SweepEngine()
        engine.run(_double_spec(2))
        engine.run(_double_spec(3))
        assert len(engine.reports) == 2
        assert engine.last_report.total == 3
        combined = engine.combined_report()
        assert combined.total == 5
        assert combined.executed == 5

    def test_as_dict_is_json_ready(self):
        report = SweepEngine().run(_double_spec(2)).report
        data = report.as_dict()
        assert data["total"] == 2
        assert len(data["runs"]) == 2
        assert {"index", "task", "key", "cached", "attempts"} <= set(
            data["runs"][0]
        )

    def test_summary_is_one_line(self):
        report = SweepEngine().run(_double_spec(2)).report
        assert "\n" not in report.summary()
        assert "2 runs" in report.summary()

    def test_metrics_flow_through_the_obs_registry(self):
        registry = MetricsRegistry()
        obs = SimRecorder(metrics=registry)
        SweepEngine(obs=obs).run(_double_spec(3))
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in registry.snapshot()["counters"]
        }
        tag = (("spec", "doubles"),)
        assert counters[("sweep.runs", tag)] == 3
        assert counters[("sweep.executed", tag)] == 3
        assert counters[("sweep.cache.misses", tag)] == 3
        histograms = {h["name"] for h in registry.snapshot()["histograms"]}
        assert "sweep.run_wall_s" in histograms
