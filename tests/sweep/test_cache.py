"""Content-addressed result cache: hits, misses, invalidation, corruption."""

import dataclasses
import pickle

from repro.experiments.runner import ClientSpec, ExperimentConfig
from repro.sweep import ResultCache, SweepEngine, SweepSpec, run_key
from repro.sweep import cache as cache_module


def _config(seed: int = 0) -> ExperimentConfig:
    return ExperimentConfig(
        clients=[ClientSpec("web")], burst_interval_s=0.5,
        duration_s=5.0, seed=seed,
    )


class TestRunKey:
    def test_stable_for_equal_params(self):
        assert run_key("experiment", {"config": _config()}) == run_key(
            "experiment", {"config": _config()}
        )

    def test_config_change_changes_the_key(self):
        assert run_key("experiment", {"config": _config(0)}) != run_key(
            "experiment", {"config": _config(1)}
        )

    def test_task_name_is_part_of_the_key(self):
        params = {"x": 1}
        assert run_key("test-double", params) != run_key("experiment", params)

    def test_code_fingerprint_change_changes_the_key(self, monkeypatch):
        before = run_key("test-double", {"x": 1})
        monkeypatch.setattr(
            cache_module, "code_fingerprint", lambda: "deadbeef" * 8
        )
        assert run_key("test-double", {"x": 1}) != before


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = run_key("test-double", {"x": 2})
        assert cache.get(key) is None
        cache.put(key, "test-double", 4)
        assert cache.get(key) == (4,)
        assert len(cache) == 1

    def test_cached_none_is_distinguished_from_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = run_key("test-maybe-none", {"x": 2})
        cache.put(key, "test-maybe-none", None)
        assert cache.get(key) == (None,)

    def test_corrupted_entry_is_a_miss_and_is_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = run_key("test-double", {"x": 3})
        cache.put(key, "test-double", 6)
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1
        assert not cache.path_for(key).exists()

    def test_wrong_schema_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = run_key("test-double", {"x": 4})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps({"schema": -1, "key": key, "result": 8})
        )
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1

    def test_key_mismatch_inside_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = run_key("test-double", {"x": 5})
        key_b = run_key("test-double", {"x": 6})
        cache.put(key_a, "test-double", 10)
        # Simulate a mis-filed entry: key_b's slot holds key_a's payload.
        path_b = cache.path_for(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(cache.path_for(key_a).read_bytes())
        assert cache.get(key_b) is None


class TestEngineCacheBehaviour:
    def _spec(self, xs=(1, 2, 3)):
        return SweepSpec.from_tasks(
            "cache-behaviour", "test-double",
            [{"x": x} for x in xs],
        )

    def test_cold_run_populates_then_warm_run_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        cold = engine.run(self._spec())
        assert cold.results == [2, 4, 6]
        assert cold.report.executed == 3
        assert cold.report.cache_hits == 0

        warm = SweepEngine(cache=ResultCache(tmp_path)).run(self._spec())
        assert warm.results == [2, 4, 6]
        assert warm.report.executed == 0
        assert warm.report.cache_hits == 3
        assert warm.report.simulation_runs == 0

    def test_config_change_misses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run(self._spec((1, 2)))
        outcome = SweepEngine(cache=cache).run(self._spec((1, 5)))
        assert outcome.report.cache_hits == 1
        assert outcome.report.executed == 1
        assert outcome.results == [2, 10]

    def test_code_fingerprint_change_cold_starts(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run(self._spec())
        monkeypatch.setattr(
            cache_module, "code_fingerprint", lambda: "0" * 64
        )
        outcome = SweepEngine(cache=cache).run(self._spec())
        assert outcome.report.cache_hits == 0
        assert outcome.report.executed == 3

    def test_corrupted_entry_is_rerun_not_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        engine.run(self._spec())
        cache.path_for(run_key("test-double", {"x": 2})).write_bytes(b"junk")

        outcome = SweepEngine(cache=ResultCache(tmp_path)).run(self._spec())
        assert outcome.results == [2, 4, 6]
        assert outcome.report.cache_hits == 2
        assert outcome.report.executed == 1
        assert outcome.report.corrupt_cache_entries == 1

    def test_cached_none_result_counts_as_hit(self, tmp_path):
        spec = SweepSpec.from_tasks(
            "maybe-none", "test-maybe-none", [{"x": 2}, {"x": 3}]
        )
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run(spec)
        warm = SweepEngine(cache=cache).run(spec)
        assert warm.results == [None, 3]
        assert warm.report.cache_hits == 2
        assert warm.report.executed == 0

    def test_dataclass_results_pickle_roundtrip(self, tmp_path):
        config = _config()
        spec = SweepSpec.experiments("one-real-run", [config])
        cache = ResultCache(tmp_path)
        cold = SweepEngine(cache=cache).run(spec)
        warm = SweepEngine(cache=cache).run(spec)
        assert warm.report.cache_hits == 1
        assert pickle.dumps(cold.results) == pickle.dumps(warm.results)
        assert dataclasses.asdict(warm.results[0].summary) == (
            dataclasses.asdict(cold.results[0].summary)
        )
