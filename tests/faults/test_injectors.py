"""Unit tests for every fault injector and the composing pipeline."""

import numpy as np

from repro.core.schedule import SCHEDULE_PORT
from repro.faults import ChurnEvent, GilbertElliottSpec, Window
from repro.faults.injectors import (
    DROP,
    DUPLICATE,
    REORDER,
    Churn,
    Corruptor,
    Duplicator,
    FaultPipeline,
    GilbertElliottLoss,
    IidLoss,
    Outage,
    Reorderer,
    ScheduleBlackout,
)
from repro.net.addr import BROADCAST_IP, Endpoint
from repro.net.packet import Packet

CLIENT = "10.0.1.1"
OTHER = "10.0.1.2"
SERVER = "10.0.2.1"


def data_packet(src=SERVER, dst=CLIENT, port=5004):
    return Packet("udp", Endpoint(src, 20000), Endpoint(dst, port),
                  payload_size=700)


def schedule_packet():
    return Packet("udp", Endpoint("10.0.0.1", SCHEDULE_PORT),
                  Endpoint(BROADCAST_IP, SCHEDULE_PORT), payload_size=80)


def verdicts(injector, n=2000, now=0.0, factory=data_packet):
    return [injector.judge(now, factory()) for _ in range(n)]


class TestIidLoss:
    def test_zero_rate_never_drops(self):
        loss = IidLoss(0.0, np.random.default_rng(1))
        assert all(v is None for v in verdicts(loss))

    def test_rate_roughly_respected(self):
        loss = IidLoss(0.25, np.random.default_rng(2))
        drops = sum(v is not None for v in verdicts(loss, n=4000))
        assert 800 < drops < 1200
        sample = next(v for v in verdicts(loss, n=50) if v is not None)
        assert sample.action == DROP and sample.reason == "loss"

    def test_deterministic_under_seed(self):
        a = IidLoss(0.3, np.random.default_rng(7))
        b = IidLoss(0.3, np.random.default_rng(7))
        assert verdicts(a) == verdicts(b)


class TestGilbertElliott:
    SPEC = GilbertElliottSpec(p_good_bad=0.05, p_bad_good=0.25)

    def test_classic_config_drops_only_in_bad_state(self):
        ge = GilbertElliottLoss(self.SPEC, np.random.default_rng(3))
        for _ in range(5000):
            verdict = ge.judge(0.0, data_packet())
            if not ge.bad:
                assert verdict is None
            else:
                assert verdict is not None and verdict.reason == "burst_loss"
        assert ge.bad_visits > 20

    def test_losses_come_in_bursts(self):
        """Consecutive drops must cluster far beyond what iid loss with
        the same average rate would produce."""
        ge = GilbertElliottLoss(self.SPEC, np.random.default_rng(4))
        drops = [ge.judge(0.0, data_packet()) is not None
                 for _ in range(20000)]
        runs = []
        current = 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        # geometric with mean 1/p_bad_good = 4
        mean_run = sum(runs) / len(runs)
        assert 3.0 < mean_run < 5.0

    def test_deterministic_under_seed(self):
        a = GilbertElliottLoss(self.SPEC, np.random.default_rng(5))
        b = GilbertElliottLoss(self.SPEC, np.random.default_rng(5))
        assert verdicts(a) == verdicts(b)


class TestCorruptor:
    def test_reason_is_corrupt(self):
        corruptor = Corruptor(0.5, np.random.default_rng(6))
        sample = next(v for v in verdicts(corruptor) if v is not None)
        assert sample.action == DROP and sample.reason == "corrupt"


class TestDuplicator:
    def test_second_pass_not_reduplicated(self):
        dup = Duplicator(1.0, np.random.default_rng(8))
        packet = data_packet()
        first = dup.judge(0.0, packet)
        assert first.action == DUPLICATE and first.reason == "duplicate"
        # The copy re-enters the channel queue: it must pass through.
        assert dup.judge(0.0, packet) is None
        # ...and a fresh frame is judged anew.
        assert dup.judge(0.0, data_packet()).action == DUPLICATE


class TestReorderer:
    def test_deferred_frame_passes_second_time(self):
        reorder = Reorderer(1.0, np.random.default_rng(9))
        packet = data_packet()
        first = reorder.judge(0.0, packet)
        assert first.action == REORDER and first.reason == "reorder"
        assert reorder.judge(0.0, packet) is None


class TestOutage:
    def test_scoped_to_windows(self):
        outage = Outage((Window(1.0, 2.0), Window(3.0, 4.0)))
        assert outage.judge(0.5, data_packet()) is None
        assert outage.judge(1.0, data_packet()).reason == "outage"
        assert outage.judge(1.5, schedule_packet()).reason == "outage"
        assert outage.judge(2.0, data_packet()) is None
        assert outage.judge(3.5, data_packet()).action == DROP
        assert outage.judge(9.0, data_packet()) is None


class TestScheduleBlackout:
    def test_kills_only_schedule_broadcasts(self):
        blackout = ScheduleBlackout((Window(1.0, 2.0),))
        assert blackout.judge(1.5, schedule_packet()).reason == "blackout"
        # data traffic keeps flowing...
        assert blackout.judge(1.5, data_packet()) is None
        # ...and schedules outside the window survive
        assert blackout.judge(0.5, schedule_packet()) is None
        assert blackout.judge(2.0, schedule_packet()) is None

    def test_is_schedule_requires_broadcast_and_port(self):
        assert ScheduleBlackout.is_schedule(schedule_packet())
        assert not ScheduleBlackout.is_schedule(data_packet())
        unicast = Packet("udp", Endpoint(SERVER, SCHEDULE_PORT),
                         Endpoint(CLIENT, SCHEDULE_PORT))
        assert not ScheduleBlackout.is_schedule(unicast)


class TestChurn:
    def churn(self):
        events = (ChurnEvent(0, leave_at=2.0, rejoin_at=4.0),)
        return Churn(events, ip_of=lambda i: f"10.0.1.{i + 1}")

    def test_uplink_from_gone_client_dies(self):
        churn = self.churn()
        uplink = data_packet(src=CLIENT, dst=SERVER)
        assert churn.judge(1.0, uplink) is None
        assert churn.judge(2.5, uplink).reason == "churn"
        assert churn.judge(4.5, uplink) is None

    def test_receiver_gate(self):
        churn = self.churn()
        assert churn.can_hear(1.0, CLIENT)
        assert not churn.can_hear(2.5, CLIENT)
        assert churn.can_hear(4.5, CLIENT)
        # Other stations always hear (broadcasts must reach them).
        assert churn.can_hear(2.5, OTHER)


class TestFaultPipeline:
    def test_first_verdict_wins(self):
        pipeline = FaultPipeline([
            Outage((Window(0.0, 10.0),)),
            IidLoss(0.999, np.random.default_rng(10)),
        ])
        assert pipeline.judge(5.0, data_packet()).reason == "outage"

    def test_churn_precedes_injectors(self):
        pipeline = FaultPipeline(
            [Outage((Window(0.0, 10.0),))],
            churn=Churn((ChurnEvent(0, 1.0),), lambda i: CLIENT),
        )
        uplink = data_packet(src=CLIENT, dst=SERVER)
        assert pipeline.judge(5.0, uplink).reason == "churn"

    def test_empty_pipeline_delivers(self):
        pipeline = FaultPipeline([])
        assert pipeline.judge(0.0, data_packet()) is None
        assert pipeline.can_hear(0.0, CLIENT)
