"""FaultController wiring and the issue's end-to-end acceptance run."""

import json

import numpy as np
import pytest

from repro.core.delay_comp import AdaptiveCompensator
from repro.core.schedule import BurstSlot, Schedule
from repro.errors import ConfigurationError
from repro.experiments.runner import ClientSpec, ExperimentConfig, run_experiment
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.faults import (
    ChurnEvent,
    ClockFaultSpec,
    DriftingCompensator,
    FaultController,
    FaultPlan,
    GilbertElliottSpec,
    Window,
)

ACCEPTANCE_PLAN = FaultPlan(
    burst_loss=GilbertElliottSpec(0.05, 0.4),
    schedule_blackouts=(Window(2.0, 3.0),),
    churn=(ChurnEvent(1, leave_at=3.0, rejoin_at=6.0),),
    fallback_after_misses=3,
    silence_timeout_s=1.0,
)


class TestControllerInstall:
    def test_install_is_idempotent(self):
        scenario = build_scenario(
            ScenarioConfig(n_clients=1, faults=FaultPlan(loss_rate=0.1))
        )
        pipeline = scenario.medium.faults
        assert pipeline is not None
        scenario.faults.install()
        assert scenario.medium.faults is pipeline

    def test_plan_without_medium_faults_is_a_no_op(self):
        plan = FaultPlan(clock=ClockFaultSpec(skew_ppm=50.0))
        scenario = build_scenario(ScenarioConfig(n_clients=1, faults=plan))
        assert scenario.medium.faults is None

    def test_no_plan_no_controller(self):
        scenario = build_scenario(ScenarioConfig(n_clients=1))
        assert scenario.faults is None
        assert scenario.medium.faults is None


class TestCompensatorWiring:
    def anchored_schedule(self):
        slot = BurstSlot("10.0.1.1", rendezvous=10.2, duration=0.05,
                         bytes_allotted=1000)
        return Schedule(seq=1, srp=10.0, next_srp=10.5, slots=(slot,))

    def test_no_clock_error_returns_inner(self):
        scenario = build_scenario(
            ScenarioConfig(n_clients=1, faults=FaultPlan(loss_rate=0.1))
        )
        inner = AdaptiveCompensator()
        assert scenario.faults.compensator_for(0, inner) is inner

    def test_clock_error_wraps(self):
        plan = FaultPlan(
            loss_rate=0.1, clock=ClockFaultSpec(skew_ppm=100.0)
        )
        scenario = build_scenario(ScenarioConfig(n_clients=1, faults=plan))
        wrapped = scenario.faults.compensator_for(0, AdaptiveCompensator())
        assert isinstance(wrapped, DriftingCompensator)

    def test_positive_skew_delays_wakeups(self):
        schedule = self.anchored_schedule()
        inner = AdaptiveCompensator()
        # 10% fast-running interval for an unmistakable effect
        drifting = DriftingCompensator(inner, skew_ppm=1e5, jitter_s=0.0)
        arrival = 10.01
        inner.observe_arrival(schedule, arrival)
        drifting.observe_arrival(schedule, arrival)
        true_wake = inner.next_schedule_wake(schedule, arrival)
        skewed_wake = drifting.next_schedule_wake(schedule, arrival)
        assert skewed_wake > true_wake
        expected = arrival + (true_wake - arrival) * 1.1
        assert skewed_wake == pytest.approx(expected)
        assert drifting.burst_wake(
            schedule, arrival, schedule.slots[0]
        ) > inner.burst_wake(schedule, arrival, schedule.slots[0])

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigurationError):
            DriftingCompensator(
                AdaptiveCompensator(), skew_ppm=0.0, jitter_s=0.001
            )

    def test_jitter_is_deterministic_per_stream(self):
        schedule = self.anchored_schedule()
        wakes = []
        for _ in range(2):
            drifting = DriftingCompensator(
                AdaptiveCompensator(), skew_ppm=0.0, jitter_s=0.002,
                rng=np.random.default_rng(12),
            )
            drifting.observe_arrival(schedule, 10.01)
            wakes.append(drifting.next_schedule_wake(schedule, 10.01))
        assert wakes[0] == wakes[1]


def acceptance_config():
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56)] * 3,
        duration_s=8.0,
        seed=13,
        faults=ACCEPTANCE_PLAN,
    )


def canonical(result):
    """A byte-level fingerprint of everything the run measured."""
    return json.dumps(
        {
            "reports": [
                [r.name, r.ip, r.energy_j, r.naive_energy_j,
                 r.bytes_received, r.packets_missed, r.missed_schedules,
                 sorted(r.extra.items())]
                for r in result.reports
            ],
            "fault_counters": result.fault_counters,
            "slots_reclaimed": result.slots_reclaimed,
            "slots_restored": result.slots_restored,
            "schedules_sent": result.schedules_sent,
            "medium_frames": result.medium_frames,
        },
        sort_keys=True,
    ).encode()


class TestAcceptance:
    """The issue's acceptance scenario, end to end."""

    def test_faulty_experiment_runs_and_reports(self):
        result = run_experiment(acceptance_config())
        counters = result.fault_counters

        # every enabled injector shows up in the per-fault accounting
        assert counters.get("faults.burst_loss", 0) > 0
        assert counters.get("faults.blackout", 0) > 0
        assert counters.get("faults.churn_miss", 0) > 0
        # the unified drop accounting reaches the summary
        assert result.summary.drops == counters
        assert result.summary.total_drops == sum(counters.values())
        # the degraded client fell back and resynchronized
        fallbacks = sum(
            r.extra.get("fallbacks", 0) for r in result.reports
        )
        assert fallbacks >= 1
        # the churned client's silence reclaimed its slot
        assert result.slots_reclaimed >= 1

    def test_same_seed_runs_byte_identical(self):
        first = canonical(run_experiment(acceptance_config()))
        second = canonical(run_experiment(acceptance_config()))
        assert first == second

    def test_faults_via_scenario_config_equivalent(self):
        config = acceptance_config()
        scenario_config = ScenarioConfig(
            n_clients=3, seed=13, faults=ACCEPTANCE_PLAN
        )
        via_scenario = ExperimentConfig(
            clients=config.clients, duration_s=config.duration_s,
            seed=13, scenario=scenario_config,
        )
        assert canonical(run_experiment(via_scenario)) == canonical(
            run_experiment(config)
        )

    def test_conflicting_plans_rejected(self):
        config = acceptance_config()
        config.scenario = ScenarioConfig(
            n_clients=3, seed=13, faults=FaultPlan(loss_rate=0.5)
        )
        with pytest.raises(ConfigurationError):
            run_experiment(config)


class TestCliAcceptance:
    ARGS = [
        "run", "--clients", "video:56,video:56,video:56",
        "--duration", "8", "--seed", "13",
        "--fault-burst-loss", "0.05:0.4",
        "--fault-blackout", "2.0:3.0",
        "--fault-churn", "1:3.0:6.0",
        "--fault-silence-timeout", "1.0",
        "--json",
    ]

    def test_cli_run_with_faults(self, capsys):
        from repro.cli import main

        assert main(list(self.ARGS)) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3

    def test_cli_output_byte_identical(self, capsys):
        from repro.cli import main

        main(list(self.ARGS))
        first = capsys.readouterr().out
        main(list(self.ARGS))
        second = capsys.readouterr().out
        assert first == second

    def test_cli_table_shows_fault_counters(self, capsys):
        from repro.cli import main

        args = [a for a in self.ARGS if a != "--json"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "faults.burst_loss" in out
        assert "faults.blackout" in out
        assert "slots reclaimed" in out
