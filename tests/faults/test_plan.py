"""FaultPlan validation, dict round-trips and the CLI spec parsers."""

import pytest

from repro.cli import parse_burst_loss, parse_churn, parse_window
from repro.errors import ConfigurationError
from repro.faults import (
    ChurnEvent,
    ClockFaultSpec,
    FaultPlan,
    GilbertElliottSpec,
    Window,
)


class TestWindow:
    def test_half_open(self):
        window = Window(1.0, 2.0)
        assert window.contains(1.0)
        assert window.contains(1.999)
        assert not window.contains(2.0)
        assert not window.contains(0.999)

    @pytest.mark.parametrize("start,end", [(-1.0, 1.0), (2.0, 2.0), (3.0, 1.0)])
    def test_rejects_degenerate(self, start, end):
        with pytest.raises(ConfigurationError):
            Window(start, end)


class TestChurnEvent:
    def test_gone_interval(self):
        event = ChurnEvent(0, leave_at=2.0, rejoin_at=4.0)
        assert not event.gone(1.9)
        assert event.gone(2.0)
        assert event.gone(3.9)
        assert not event.gone(4.0)

    def test_never_rejoins(self):
        assert ChurnEvent(0, leave_at=1.0).gone(1e9)

    @pytest.mark.parametrize("kwargs", [
        {"client_index": -1, "leave_at": 1.0},
        {"client_index": 0, "leave_at": -0.5},
        {"client_index": 0, "leave_at": 2.0, "rejoin_at": 2.0},
        {"client_index": 0, "leave_at": 2.0, "rejoin_at": 1.0},
    ])
    def test_rejects_bad_events(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChurnEvent(**kwargs)


class TestGilbertElliott:
    def test_mean_burst_len(self):
        assert GilbertElliottSpec(0.1, 0.25).mean_burst_len == 4.0
        assert GilbertElliottSpec(0.1, 0.0).mean_burst_len == float("inf")

    @pytest.mark.parametrize("kwargs", [
        {"p_good_bad": 1.5, "p_bad_good": 0.5},
        {"p_good_bad": 0.5, "p_bad_good": -0.1},
        {"p_good_bad": 0.5, "p_bad_good": 0.5, "loss_bad": 2.0},
    ])
    def test_rejects_bad_probabilities(self, kwargs):
        with pytest.raises(ConfigurationError):
            GilbertElliottSpec(**kwargs)


class TestFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        {"loss_rate": 1.0},
        {"loss_rate": -0.1},
        {"duplicate_rate": 1.0},
        {"reorder_rate": -0.5},
        {"corrupt_rate": 2.0},
        {"fallback_after_misses": 0},
        {"silence_timeout_s": 0.0},
        {"silence_timeout_s": -1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_lists_normalized_to_tuples(self):
        plan = FaultPlan(
            outages=[Window(1.0, 2.0)],
            churn=[ChurnEvent(0, 1.0)],
        )
        assert isinstance(plan.outages, tuple)
        assert isinstance(plan.churn, tuple)

    def test_touches_medium(self):
        assert not FaultPlan().touches_medium
        assert not FaultPlan(
            clock=ClockFaultSpec(skew_ppm=100.0), silence_timeout_s=1.0
        ).touches_medium
        assert FaultPlan(loss_rate=0.1).touches_medium
        assert FaultPlan(burst_loss=GilbertElliottSpec(0.1, 0.5)).touches_medium
        assert FaultPlan(schedule_blackouts=(Window(0.0, 1.0),)).touches_medium
        assert FaultPlan(churn=(ChurnEvent(0, 1.0),)).touches_medium

    def test_dict_round_trip(self):
        plan = FaultPlan(
            loss_rate=0.01,
            burst_loss=GilbertElliottSpec(0.05, 0.4, loss_bad=0.9),
            duplicate_rate=0.02,
            reorder_rate=0.03,
            corrupt_rate=0.04,
            outages=(Window(1.0, 2.0),),
            schedule_blackouts=(Window(3.0, 4.0), Window(5.0, 6.0)),
            clock=ClockFaultSpec(skew_ppm=150.0, jitter_s=0.001),
            churn=(ChurnEvent(1, 2.0, 5.0), ChurnEvent(2, 3.0)),
            fallback_after_misses=4,
            silence_timeout_s=1.5,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_default_round_trip(self):
        assert FaultPlan.from_dict(FaultPlan().to_dict()) == FaultPlan()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"loss_rate": 0.1, "gremlins": True})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict([1, 2, 3])

    def test_from_dict_rejects_malformed_nested(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"burst_loss": {"nope": 1}})


class TestCliParsers:
    def test_parse_window(self):
        assert parse_window("3.0:4.5") == Window(3.0, 4.5)

    @pytest.mark.parametrize("text", ["3.0", "a:b", "4:3", ""])
    def test_parse_window_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_window(text)

    def test_parse_churn(self):
        assert parse_churn("2:10") == ChurnEvent(2, 10.0)
        assert parse_churn("2:10:25") == ChurnEvent(2, 10.0, 25.0)

    @pytest.mark.parametrize("text", ["2", "x:1", "1:2:3:4", "0:5:4"])
    def test_parse_churn_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_churn(text)

    def test_parse_burst_loss(self):
        assert parse_burst_loss("0.05:0.4") == GilbertElliottSpec(0.05, 0.4)
        assert parse_burst_loss("0.05:0.4:0.9") == GilbertElliottSpec(
            0.05, 0.4, loss_bad=0.9
        )
        assert parse_burst_loss("0.05:0.4:0.9:0.01") == GilbertElliottSpec(
            0.05, 0.4, loss_good=0.01, loss_bad=0.9
        )

    @pytest.mark.parametrize("text", ["0.05", "a:b", "2.0:0.4", ""])
    def test_parse_burst_loss_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_burst_loss(text)
