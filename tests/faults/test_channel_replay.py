"""Regression: channel modeling never perturbs fault-plan replays.

The channel model draws exclusively from its reserved ``channel:`` /
``channel-loss:`` streams (see :mod:`repro.net.channel`), so installing
it on an existing faults scenario must leave every fault-injector draw
— and therefore the whole packet-level replay — exactly where it was.
This pins the fix at full-system scope against the ``dynamic_faults``
golden configuration: a *lossless* channel model steps its chains all
run long, yet the faults counters, client reports and the entire
non-channel event stream stay byte-identical.
"""

import dataclasses
import json

import pytest

from repro.experiments.runner import run_experiment
from repro.net.channel import ChannelPlan
from repro.obs import events_jsonl, metrics_json
from repro.units import ms

from tests.obs.test_goldens import _dynamic_faults_config

#: Aggressively switching but lossless: the chains consume plenty of
#: transition draws without ever touching a frame, so any perturbation
#: of the fault replay would be the channel leaking into foreign
#: streams — exactly the bug the exclusive-stream fix rules out.
LOSSLESS_CHANNEL = ChannelPlan(
    p_good_bad=0.4, p_bad_good=0.5,
    loss_good=0.0, loss_bad=0.0, epoch_s=ms(50),
)


def faults_counters(result):
    counters = json.loads(metrics_json(result.obs))["counters"]
    return [
        entry
        for entry in counters
        if entry["name"].startswith("faults.")
        or entry["labels"].get("reason", "").startswith("faults.")
    ]


def _is_channel_telemetry(line):
    record = json.loads(line)
    return record["name"].startswith("channel.") or record.get(
        "track", ""
    ).startswith("channel ")


def non_channel_events(result):
    return [
        line
        for line in events_jsonl(result.obs).splitlines()
        if not _is_channel_telemetry(line)
    ]


@pytest.mark.slow
def test_faults_golden_replay_identical_under_channel_model():
    base = run_experiment(_dynamic_faults_config())
    with_channel = run_experiment(
        dataclasses.replace(
            _dynamic_faults_config(), channel=LOSSLESS_CHANNEL
        )
    )
    # The channel model really ran (chains stepped, states queried)...
    assert with_channel.obs is not None
    channel_events = [
        line
        for line in events_jsonl(with_channel.obs).splitlines()
        if _is_channel_telemetry(line)
    ]
    assert channel_events, "lossless channel model never transitioned"
    # ...and the plan did something worth protecting.
    base_faults = faults_counters(base)
    assert base_faults, "golden faults config injected nothing"
    # The replay itself is untouched: same fault draws, same per-client
    # outcomes, same event stream modulo the channel's own telemetry.
    assert faults_counters(with_channel) == base_faults
    assert with_channel.reports == base.reports
    assert non_channel_events(with_channel) == non_channel_events(base)


def test_fault_injector_draws_isolated_from_channel_streams():
    """Tier-1 smoke for the same contract at the stream level: the
    sequence a fault-layer stream yields is independent of how much the
    channel model has consumed from the same ``RngStreams`` family."""
    from repro.net.channel import ChannelModel
    from repro.sim.random import RngStreams

    untouched = RngStreams(seed=9)
    shared = RngStreams(seed=9)
    model = ChannelModel(
        ChannelPlan(p_good_bad=0.4, p_bad_good=0.5, loss_bad=0.9),
        shared,
        ("10.0.1.2", "10.0.1.3"),
    )
    for i in range(50):
        model.state_good("10.0.1.2", i * 0.1)
        model.rx_blocked(i * 0.1, "10.0.1.3")
    for name in ("faults:loss", "faults:burst", "faults:churn"):
        assert (
            shared.get(name).random(8).tolist()
            == untouched.get(name).random(8).tolist()
        )
