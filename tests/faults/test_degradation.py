"""Graceful degradation: fallback, resync and slot reclamation.

The system's answers to the injected faults:

* a client that misses N consecutive schedule broadcasts stops trusting
  its cadence, falls back to always-listen, and resynchronizes on the
  next schedule it hears;
* the scheduler notices a client whose uplink went silent, reclaims its
  burst slots, and restores them when the client is heard again.
"""

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.experiments.scenarios import ScenarioConfig, build_scenario, client_ip
from repro.faults import ChurnEvent, FaultPlan, Window
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket


def faulty_scenario(plan, n_clients=1, seed=11, interval=0.1):
    scenario = build_scenario(
        ScenarioConfig(n_clients=n_clients, seed=seed, faults=plan)
    )
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=interval,
        silence_timeout_s=plan.silence_timeout_s,
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for handle in scenario.clients:
        handle.daemon = PowerAwareClient(
            handle.node, handle.wnic, AdaptiveCompensator(),
            fallback_after_misses=plan.fallback_after_misses,
            trace=scenario.trace,
        )
    return scenario


def awake_between(wnic, start, end, horizon):
    return sum(
        max(0.0, min(b, end) - max(a, start))
        for a, b in wnic.awake_intervals(horizon)
    )


def uplink_feed(scenario, index, until, gap=0.05):
    sock = UdpSocket(scenario.clients[index].node, 21000 + index)

    def process():
        while scenario.sim.now < until:
            sock.sendto(60, Endpoint(scenario.video_server.ip, 21000 + index))
            yield scenario.sim.timeout(gap)

    scenario.sim.process(process())


class TestScheduleBlackoutFallback:
    PLAN = FaultPlan(
        schedule_blackouts=(Window(2.0, 3.0),), fallback_after_misses=3
    )

    def test_client_falls_back_and_resyncs(self):
        scenario = faulty_scenario(self.PLAN)
        scenario.sim.run(until=6.0)
        daemon = scenario.clients[0].daemon

        # ~10 broadcasts died on the air...
        assert scenario.counters.get("faults.blackout") >= 8
        # ...the client noticed, gave up on its cadence...
        assert daemon.missed_schedules >= 3
        assert daemon.max_consecutive_misses >= 3
        assert daemon.fallbacks >= 1
        # ...and resynchronized once the channel returned.
        assert daemon.resyncs == daemon.fallbacks
        assert not daemon.in_fallback
        assert scenario.trace.count("client.fallback") >= 1
        assert scenario.trace.count("client.resync") >= 1

    def test_client_sleeps_again_after_resync(self):
        scenario = faulty_scenario(self.PLAN)
        scenario.sim.run(until=6.0)
        wnic = scenario.clients[0].wnic
        # always-listen during the blackout tail...
        assert awake_between(wnic, 2.3, 3.0, 6.0) > 0.6
        # ...but back to its schedule-only duty cycle afterwards
        assert awake_between(wnic, 4.0, 6.0, 6.0) < 0.8

    def test_short_blackout_does_not_trigger_fallback(self):
        plan = FaultPlan(
            schedule_blackouts=(Window(2.0, 2.15),), fallback_after_misses=3
        )
        scenario = faulty_scenario(plan)
        scenario.sim.run(until=4.0)
        daemon = scenario.clients[0].daemon
        assert daemon.missed_schedules >= 1
        assert daemon.fallbacks == 0

    def test_fallback_threshold_respected(self):
        """A lower threshold flips the same blackout into fallback."""
        plan = FaultPlan(
            schedule_blackouts=(Window(2.0, 2.35),), fallback_after_misses=2
        )
        scenario = faulty_scenario(plan)
        scenario.sim.run(until=4.0)
        assert scenario.clients[0].daemon.fallbacks >= 1


class TestSlotReclamation:
    PLAN = FaultPlan(
        churn=(ChurnEvent(0, leave_at=2.0, rejoin_at=4.0),),
        silence_timeout_s=0.5,
    )

    def test_silent_client_slots_reclaimed_and_restored(self):
        scenario = faulty_scenario(self.PLAN, n_clients=2)
        for index in (0, 1):
            uplink_feed(scenario, index, until=6.0)
        scenario.sim.run(until=6.0)
        scheduler = scenario.proxy.scheduler

        # client 0 went quiet mid-run: its slot was reclaimed...
        assert scheduler.slots_reclaimed >= 1
        # ...and handed back once its uplink was heard again.
        assert scheduler.slots_restored >= 1
        assert scenario.trace.count("scheduler.reclaim") >= 1
        assert scenario.trace.count("scheduler.restore") >= 1
        # the departed radio showed up in the fault accounting
        assert scenario.counters.get("faults.churn") > 0
        assert scenario.counters.get("faults.churn_miss") > 0

    def test_still_heard_client_keeps_slots(self):
        scenario = faulty_scenario(self.PLAN, n_clients=2)
        for index in (0, 1):
            uplink_feed(scenario, index, until=6.0)
        scenario.sim.run(until=6.0)
        # client 1 never churned, so only client 0 was ever reclaimed
        reclaims = list(scenario.trace.query("scheduler.reclaim"))
        assert {r.fields["client"] for r in reclaims} == {client_ip(0)}

    def test_reclamation_disabled_by_default(self):
        plan = FaultPlan(churn=(ChurnEvent(0, leave_at=2.0, rejoin_at=4.0),))
        scenario = faulty_scenario(plan, n_clients=1)
        uplink_feed(scenario, 0, until=6.0)
        scenario.sim.run(until=6.0)
        assert scenario.proxy.scheduler.slots_reclaimed == 0

    def test_never_heard_client_not_judged_silent(self):
        """Pure receivers (no uplink ever) must keep their slots."""
        plan = FaultPlan(silence_timeout_s=0.5)
        scenario = faulty_scenario(plan, n_clients=1)
        scenario.sim.run(until=4.0)
        assert scenario.proxy.scheduler.slots_reclaimed == 0


class TestChurnedClientRecovers:
    def test_rejoined_client_hears_schedules_again(self):
        plan = FaultPlan(
            churn=(ChurnEvent(0, leave_at=1.5, rejoin_at=3.0),),
            fallback_after_misses=3,
        )
        scenario = faulty_scenario(plan)
        scenario.sim.run(until=2.9)
        daemon = scenario.clients[0].daemon
        heard_while_gone = daemon.schedules_heard
        assert daemon.fallbacks >= 1  # went dark long enough to fall back
        scenario.sim.run(until=5.0)
        assert daemon.schedules_heard > heard_while_gone
        assert daemon.resyncs >= 1
        assert not daemon.in_fallback
