"""Property: a run is a pure function of (config, seed).

Two fresh simulators built from the same configuration must produce
byte-identical event traces — with and without a fault plan. This is
the contract everything else in :mod:`repro.faults` leans on: a fault
scenario can be replayed exactly from its stored plan and seed.
"""

import json

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.experiments.scenarios import ScenarioConfig, build_scenario, client_ip
from repro.faults import ChurnEvent, FaultPlan, GilbertElliottSpec, Window
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket

FULL_PLAN = FaultPlan(
    loss_rate=0.02,
    burst_loss=GilbertElliottSpec(0.05, 0.4),
    duplicate_rate=0.02,
    reorder_rate=0.02,
    corrupt_rate=0.01,
    outages=(Window(2.6, 2.8),),
    schedule_blackouts=(Window(1.0, 1.4),),
    churn=(ChurnEvent(1, leave_at=1.5, rejoin_at=2.5),),
    fallback_after_misses=2,
    silence_timeout_s=0.5,
)


def run_and_serialize(seed=5, faults=None, until=4.0):
    """Run one fresh simulator and flatten its trace to bytes."""
    scenario = build_scenario(
        ScenarioConfig(n_clients=2, seed=seed, faults=faults)
    )
    plan = faults or FaultPlan()
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=0.1,
        silence_timeout_s=plan.silence_timeout_s,
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for handle in scenario.clients:
        handle.daemon = PowerAwareClient(
            handle.node, handle.wnic, AdaptiveCompensator(),
            fallback_after_misses=plan.fallback_after_misses,
            trace=scenario.trace,
        )
        UdpSocket(handle.node, 5004)

    sender = UdpSocket(scenario.video_server, 21000)
    uplink = UdpSocket(scenario.clients[0].node, 21001)

    def feed():
        while scenario.sim.now < until - 0.5:
            for index in range(2):
                sender.sendto(700, Endpoint(client_ip(index), 5004))
            uplink.sendto(60, Endpoint(scenario.video_server.ip, 21001))
            yield scenario.sim.timeout(0.05)

    scenario.sim.process(feed())
    scenario.sim.run(until=until)
    payload = json.dumps(
        [
            [row.time, row.category, sorted(row.fields.items(), key=str)]
            for row in scenario.trace.all()
        ],
        default=repr,
        sort_keys=True,
    ).encode()
    return payload, scenario


class TestDeterminism:
    def test_clean_runs_byte_identical(self):
        first, _ = run_and_serialize(faults=None)
        second, _ = run_and_serialize(faults=None)
        assert first == second

    def test_faulty_runs_byte_identical(self):
        first, a = run_and_serialize(faults=FULL_PLAN)
        second, b = run_and_serialize(faults=FULL_PLAN)
        assert first == second
        assert a.counters.totals() == b.counters.totals()
        # the plan actually did something, so the property has teeth
        assert a.counters.total("faults.") > 0

    def test_different_seed_differs(self):
        """Sanity: the serialization is sensitive enough to notice."""
        first, _ = run_and_serialize(seed=5, faults=FULL_PLAN)
        second, _ = run_and_serialize(seed=6, faults=FULL_PLAN)
        assert first != second

    def test_plan_survives_dict_round_trip_identically(self):
        """Replaying from the stored plan is the same experiment."""
        first, _ = run_and_serialize(faults=FULL_PLAN)
        second, _ = run_and_serialize(
            faults=FaultPlan.from_dict(FULL_PLAN.to_dict())
        )
        assert first == second
