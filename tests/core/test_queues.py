"""Unit tests for per-client packet queues."""

import pytest

from repro.core.queues import ClientQueue, QueueEntry
from repro.errors import SchedulingError
from repro.net.addr import Endpoint
from repro.net.packet import Packet


class FakeConn:
    """Stands in for a TcpConnection (queues only use identity)."""

    def __init__(self, name="conn"):
        self.name = name


def udp_packet(size=500):
    return Packet(
        "udp", Endpoint("10.0.2.1", 20000), Endpoint("10.0.1.1", 5004),
        payload_size=size,
    )


class TestQueueEntry:
    def test_udp_entry_needs_packet(self):
        with pytest.raises(SchedulingError):
            QueueEntry("udp", 100)

    def test_tcp_entry_needs_connection(self):
        with pytest.raises(SchedulingError):
            QueueEntry("tcp", 100)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchedulingError):
            QueueEntry("icmp", 1, packet=udp_packet())


class TestClientQueue:
    def test_push_and_account(self):
        queue = ClientQueue("10.0.1.1")
        queue.push_udp(udp_packet(300))
        queue.push_tcp(FakeConn(), 700)
        assert queue.bytes_pending == 1000
        assert queue.total_enqueued_bytes == 1000
        assert len(queue) == 2
        assert queue.has_udp and queue.has_tcp

    def test_tcp_credits_coalesce(self):
        queue = ClientQueue("c")
        conn = FakeConn()
        queue.push_tcp(conn, 100)
        queue.push_tcp(conn, 200)
        assert len(queue) == 1
        assert queue.bytes_pending == 300

    def test_tcp_credits_do_not_coalesce_across_connections(self):
        queue = ClientQueue("c")
        queue.push_tcp(FakeConn("a"), 100)
        queue.push_tcp(FakeConn("b"), 100)
        assert len(queue) == 2

    def test_zero_byte_tcp_push_ignored(self):
        queue = ClientQueue("c")
        queue.push_tcp(FakeConn(), 0)
        assert queue.empty

    def test_peak_tracks_high_water_mark(self):
        queue = ClientQueue("c")
        queue.push_udp(udp_packet(1000))
        queue.pop_up_to(1000)
        queue.push_udp(udp_packet(400))
        assert queue.peak_bytes == 1000
        assert queue.bytes_pending == 400

    def test_pop_up_to_respects_budget(self):
        queue = ClientQueue("c")
        for _ in range(5):
            queue.push_udp(udp_packet(500))
        taken = queue.pop_up_to(1200)
        assert [e.nbytes for e in taken] == [500, 500]
        assert queue.bytes_pending == 1500

    def test_udp_packets_are_atomic(self):
        queue = ClientQueue("c")
        queue.push_udp(udp_packet(500))
        queue.push_udp(udp_packet(500))
        taken = queue.pop_up_to(700)
        assert len(taken) == 1

    def test_oversized_single_udp_packet_still_pops(self):
        queue = ClientQueue("c")
        queue.push_udp(udp_packet(5000))
        taken = queue.pop_up_to(100)
        assert len(taken) == 1
        assert queue.empty

    def test_tcp_credits_split(self):
        queue = ClientQueue("c")
        conn = FakeConn()
        queue.push_tcp(conn, 1000)
        taken = queue.pop_up_to(400)
        assert taken[0].nbytes == 400
        assert queue.bytes_pending == 600
        rest = queue.pop_up_to(10_000)
        assert rest[0].nbytes == 600

    def test_fifo_order_across_kinds(self):
        queue = ClientQueue("c")
        conn = FakeConn()
        queue.push_udp(udp_packet(100))
        queue.push_tcp(conn, 200)
        queue.push_udp(udp_packet(300))
        kinds = [e.kind for e in queue.pop_up_to(10_000)]
        assert kinds == ["udp", "tcp", "udp"]

    def test_kind_filter_pops_only_matching(self):
        queue = ClientQueue("c")
        conn = FakeConn()
        queue.push_udp(udp_packet(100))
        queue.push_tcp(conn, 200)
        queue.push_udp(udp_packet(300))
        tcp_taken = queue.pop_up_to(10_000, kind="tcp")
        assert [e.kind for e in tcp_taken] == ["tcp"]
        assert queue.bytes_pending == 400
        udp_taken = queue.pop_up_to(10_000, kind="udp")
        assert [e.nbytes for e in udp_taken] == [100, 300]

    def test_negative_budget_rejected(self):
        with pytest.raises(SchedulingError):
            ClientQueue("c").pop_up_to(-1)

    def test_bytes_pending_for(self):
        queue = ClientQueue("c")
        a, b = FakeConn("a"), FakeConn("b")
        queue.push_tcp(a, 100)
        queue.push_tcp(b, 250)
        assert queue.bytes_pending_for(a) == 100
        assert queue.bytes_pending_for(b) == 250

    def test_drop_connection(self):
        queue = ClientQueue("c")
        a, b = FakeConn("a"), FakeConn("b")
        queue.push_tcp(a, 100)
        queue.push_udp(udp_packet(50))
        queue.push_tcp(b, 200)
        dropped = queue.drop_connection(a)
        assert dropped == 100
        assert queue.bytes_pending == 250
        assert queue.bytes_pending_for(a) == 0
