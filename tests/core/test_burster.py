"""Unit tests for burst transmission and the marking protocol."""

import pytest

from repro.core.burster import Burster, MarkingController
from repro.core.queues import ClientQueue
from repro.core.schedule import BurstSlot
from repro.net.addr import Endpoint
from repro.net.packet import MSS, Packet
from repro.net.tcp import TcpConnection, TcpListener
from repro.net.udp import UdpSocket

from tests.net.helpers import wire_pair


def make_established_pair():
    """A real TCP connection pair a->b, fully established."""
    sim, a, b, _link = wire_pair()
    accepted = []
    TcpListener(b, 80, lambda conn: accepted.append(conn))
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    sim.run(until=2.0)
    assert client.state == "ESTABLISHED"
    return sim, a, b, client, accepted[0]


def udp_entry_packet(size, dst="10.0.0.2"):
    return Packet(
        "udp", Endpoint("10.0.2.1", 20000), Endpoint(dst, 5004),
        payload_size=size,
    )


def slot_for(nbytes, ip="10.0.0.2"):
    return BurstSlot(
        client_ip=ip, rendezvous=0.0, duration=0.1, bytes_allotted=nbytes
    )


class TestMarkingController:
    def test_marks_segment_containing_mark_byte(self):
        sim, a, b, sender, receiver = make_established_pair()
        marked = []
        b.taps.append(
            lambda p, i: (marked.append(p.seq) if p.tos_marked else None, False)[1]
        )
        controller = MarkingController(sender)
        controller.hand_bytes(3000, mark_last=True)
        sim.run(until=5.0)
        # mark byte = offset 1 + 3000 - 1 = 3000; segments are
        # [1,1461), [1461,2921), [2921,3001) -> third is marked.
        assert marked == [2921]
        assert controller.segments_marked == 1

    def test_unmarked_hand_off(self):
        sim, a, b, sender, receiver = make_established_pair()
        saw_mark = []
        b.taps.append(
            lambda p, i: (saw_mark.append(p) if p.tos_marked else None, False)[1]
        )
        controller = MarkingController(sender)
        controller.hand_bytes(1000, mark_last=False)
        sim.run(until=5.0)
        assert saw_mark == []

    def test_sent_fwd_invariant(self):
        sim, a, b, sender, receiver = make_established_pair()
        controller = MarkingController(sender)
        controller.hand_bytes(5000, mark_last=True)
        sim.run(until=5.0)
        # paper invariant: fwd <= sent (and equal once everything left)
        assert controller.fwd_offset <= controller.sent_offset
        assert controller.fwd_offset == controller.sent_offset

    def test_mark_stalled_by_window_survives_later_marks(self):
        """A marked hand-off whose final byte is stuck behind the send
        window must still be marked once the window reopens, even when
        later hand-offs set newer marks in the meantime."""
        sim, a, b, sender, receiver = make_established_pair()
        marked = []
        b.taps.append(
            lambda p, i: (
                marked.append((p.seq, p.end_seq)) if p.tos_marked else None,
                False,
            )[1]
        )
        sender.cwnd = sender.peer_rwnd
        controller = MarkingController(sender)
        # First hand-off overflows the initial window, so its mark byte
        # cannot be emitted synchronously; the second overwrites the
        # paper's scalar `mark` variable before the window reopens.
        first = sender.peer_rwnd + 500
        marks = []
        for size in (first, 2000):
            marks.append(sender.app_limit + size - 1)
            controller.hand_bytes(size, mark_last=True)
        sim.run(until=30.0)
        for mark_byte in marks:
            assert any(s <= mark_byte < e for s, e in marked)
        assert controller.segments_marked == 2

    def test_retransmitted_mark_segment_is_marked_again(self):
        drop_state = {"dropped": False}

        def drop_marked_once(packet):
            if packet.tos_marked and not drop_state["dropped"]:
                drop_state["dropped"] = True
                return True
            return False

        sim, a, b, _link = wire_pair(drop=drop_marked_once)
        accepted = []
        TcpListener(b, 80, lambda conn: accepted.append(conn))
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=2.0)
        marks_seen = []
        b.taps.append(
            lambda p, i: (marks_seen.append(p.seq) if p.tos_marked else None, False)[1]
        )
        controller = MarkingController(client)
        controller.hand_bytes(2000, mark_last=True)
        sim.run(until=10.0)
        assert drop_state["dropped"]
        # The retransmission carrying the mark byte is marked too.
        assert len(marks_seen) >= 1
        assert controller.segments_marked >= 2  # original + retransmit


class TestBurster:
    def test_udp_burst_marks_last_packet(self):
        sim, a, b, _link = wire_pair()
        received = []
        UdpSocket(b, 5004, on_receive=lambda p: received.append(p.tos_marked))
        queue = ClientQueue("10.0.0.2")
        for _ in range(3):
            queue.push_udp(udp_entry_packet(400))
        burster = Burster(a)
        sent = burster.burst(queue, slot_for(10_000))
        sim.run()
        assert sent == 1200
        assert received == [False, False, True]

    def test_burst_respects_allotment(self):
        sim, a, b, _link = wire_pair()
        received = []
        UdpSocket(b, 5004, on_receive=lambda p: received.append(p))
        queue = ClientQueue("10.0.0.2")
        for _ in range(5):
            queue.push_udp(udp_entry_packet(400))
        burster = Burster(a)
        sent = burster.burst(queue, slot_for(900))
        sim.run()
        assert sent == 800  # two packets fit
        assert len(received) == 2
        assert received[-1].tos_marked
        assert queue.bytes_pending == 1200

    def test_empty_queue_bursts_nothing(self):
        sim, a, b, _link = wire_pair()
        burster = Burster(a)
        assert burster.burst(ClientQueue("10.0.0.2"), slot_for(1000)) == 0

    def test_mixed_burst_marks_trailing_tcp(self):
        sim, a, b, sender, receiver = make_established_pair()
        marked_protos = []
        b.taps.append(
            lambda p, i: (
                marked_protos.append(p.proto) if p.tos_marked else None,
                False,
            )[1]
        )
        UdpSocket(b, 5004)
        queue = ClientQueue("10.0.0.2")
        queue.push_udp(udp_entry_packet(300))
        queue.push_tcp(sender, 1000)
        burster = Burster(a)
        burster.burst(queue, slot_for(10_000))
        sim.run(until=5.0)
        assert marked_protos == ["tcp"]

    def test_closed_connection_entries_are_skipped(self):
        sim, a, b, sender, receiver = make_established_pair()
        queue = ClientQueue("10.0.0.2")
        queue.push_tcp(sender, 500)
        sender.abort()
        burster = Burster(a)
        assert burster.burst(queue, slot_for(10_000)) == 0

    def test_controller_cache_and_forget(self):
        sim, a, b, sender, receiver = make_established_pair()
        burster = Burster(a)
        controller = burster.controller_for(sender)
        assert burster.controller_for(sender) is controller
        burster.forget(sender)
        assert burster.controller_for(sender) is not controller
