"""Unit tests for the linear send-cost model and its calibration."""

import pytest

from repro.core.bandwidth_model import LinearCostModel, calibrate, calibrate_tcp
from repro.errors import ConfigurationError
from repro.net.medium import WirelessMedium
from repro.sim import Simulator
from repro.units import mbps


@pytest.fixture
def medium():
    return WirelessMedium(Simulator(), rate_bps=mbps(11))


class TestLinearCostModel:
    def test_packet_cost_is_affine(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        assert model.packet_cost(0) == pytest.approx(0.001)
        assert model.packet_cost(1000) == pytest.approx(0.002)

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearCostModel(overhead_s=-0.1, per_byte_s=1e-6)
        with pytest.raises(ConfigurationError):
            LinearCostModel(overhead_s=0.0, per_byte_s=0.0)

    def test_burst_cost_segments_at_mss(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        one = model.packet_cost(1460)
        assert model.burst_cost(1460) == pytest.approx(one)
        assert model.burst_cost(2920) == pytest.approx(2 * one)
        assert model.burst_cost(1461) == pytest.approx(one + model.packet_cost(1))

    def test_burst_cost_zero(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        assert model.burst_cost(0) == 0.0

    def test_bytes_for_inverts_burst_cost(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        for duration in (0.01, 0.05, 0.123, 0.5):
            nbytes = model.bytes_for(duration)
            assert model.burst_cost(nbytes) <= duration + 1e-12
            # one more full packet would not fit
            assert model.burst_cost(nbytes + 1460) > duration

    def test_bytes_for_nonpositive_duration(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        assert model.bytes_for(0.0) == 0
        assert model.bytes_for(-1.0) == 0

    def test_effective_rate(self):
        model = LinearCostModel(overhead_s=0.001, per_byte_s=1e-6)
        rate = model.effective_rate_bps()
        assert rate == pytest.approx(1460 * 8 / model.packet_cost(1460))


class TestCalibration:
    def test_calibrated_model_matches_medium_airtime(self, medium):
        model = calibrate(medium)
        # The model should estimate a 1400B UDP packet's airtime within
        # the backoff margin it deliberately adds.
        actual = medium.airtime(1400 + 62)
        estimated = model.packet_cost(1400)
        assert actual <= estimated <= actual + medium.max_backoff_s

    def test_calibration_is_conservative(self, medium):
        """Never underestimates airtime (the paper's overrun concern)."""
        model = calibrate(medium)
        for payload in (64, 200, 700, 1000, 1400):
            assert model.packet_cost(payload) >= medium.airtime(payload + 62)

    def test_effective_rate_plausible_for_11mbps(self, medium):
        model = calibrate(medium)
        assert mbps(3) < model.effective_rate_bps(mss=1400) < mbps(8)

    def test_tcp_variant_costs_more_per_packet(self, medium):
        udp = calibrate(medium)
        tcp = calibrate_tcp(medium)
        assert tcp.packet_cost(1000) > udp.packet_cost(1000)

    def test_bad_payload_order_rejected(self, medium):
        with pytest.raises(ConfigurationError):
            calibrate(medium, small_payload=1400, large_payload=64)
