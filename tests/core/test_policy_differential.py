"""Differential harness: online policies vs. the offline DP optimum.

Three layers of cross-checks on the shared discrete (queue, channel)
model of :mod:`repro.core.policy`:

* **oracle self-consistency** — :func:`dp_optimal`'s backward-induction
  value, its executed outcome through the shared
  :func:`execute_grants` accounting, and the independent
  :func:`brute_force_value` forward enumeration must all agree.
* **dominance** — the clairvoyant DP never loses to any online policy
  (dynamic, channel over max_defer settings, joint over thresholds) on
  any instance, exhaustively enumerated then randomly sampled.
* **threshold optimality** — on the single-client fade family where
  the joint policy's threshold structure is provably optimal, the best
  joint threshold exactly achieves the DP optimum.

Tier-1 runs reduced bounds; the ``slow`` variants sweep the full
enumeration and larger random instances.
"""

import itertools

import pytest

from repro.core.policy import (
    ChannelAwarePolicy,
    JointThresholdPolicy,
    PaperDynamicPolicy,
    PolicyInstance,
    random_instance,
    rollout,
)
from repro.energy.optimal import brute_force_value, dp_optimal

#: Tolerance for comparing independently accumulated float costs.
TOL = 1e-9

#: The heuristic lineup every dominance check runs: the paper baseline,
#: the channel-aware policy across deferral bounds, and the joint
#: policy across thresholds.
HEURISTICS = (
    PaperDynamicPolicy(),
    ChannelAwarePolicy(max_defer=0),
    ChannelAwarePolicy(max_defer=2),
    JointThresholdPolicy(threshold=1),
    JointThresholdPolicy(threshold=2),
    JointThresholdPolicy(threshold=3),
)


def enumerate_instances(n_clients, horizon, max_arrival=1):
    """Every instance with per-cell arrivals in 0..max_arrival and every
    channel realization — the exhaustive grid of the differential test."""
    cells = n_clients * horizon
    arrival_space = itertools.product(range(max_arrival + 1), repeat=cells)
    for flat_arrivals in arrival_space:
        if not any(flat_arrivals):
            continue  # no traffic: every policy trivially scores zero
        arrivals = tuple(
            flat_arrivals[slot * n_clients : (slot + 1) * n_clients]
            for slot in range(horizon)
        )
        for flat_channel in itertools.product((True, False), repeat=cells):
            channel = tuple(
                flat_channel[slot * n_clients : (slot + 1) * n_clients]
                for slot in range(horizon)
            )
            yield PolicyInstance(arrivals=arrivals, channel_good=channel)


def assert_oracle_consistent(instance):
    """DP value == executed outcome == brute-force enumeration."""
    solution = dp_optimal(instance)
    assert solution.outcome.total_cost == pytest.approx(
        solution.value, abs=TOL
    )
    assert brute_force_value(instance) == pytest.approx(
        solution.value, abs=TOL
    )
    return solution


def assert_dp_dominates(instance, check_brute_force=True):
    """The clairvoyant optimum never loses to any online heuristic."""
    if check_brute_force:
        solution = assert_oracle_consistent(instance)
    else:
        solution = dp_optimal(instance)
        assert solution.outcome.total_cost == pytest.approx(
            solution.value, abs=TOL
        )
    for policy in HEURISTICS:
        outcome = rollout(instance, policy)
        assert solution.value <= outcome.total_cost + TOL, (
            f"DP ({solution.value}) lost to {policy!r} "
            f"({outcome.total_cost}) on {instance!r}"
        )
    return solution


class TestOracleConsistency:
    def test_hand_instance(self):
        """A worked two-client example: fade forces a serve-later plan."""
        instance = PolicyInstance(
            arrivals=((2, 0), (0, 1), (0, 0), (0, 0)),
            channel_good=(
                (False, True),
                (False, True),
                (True, True),
                (True, True),
            ),
        )
        solution = assert_dp_dominates(instance)
        # All three packets are worth serving (penalty 8 > any path).
        assert solution.outcome.served == 3

    def test_single_packet_good_channel(self):
        instance = PolicyInstance(
            arrivals=((1,),), channel_good=((True,),)
        )
        solution = assert_oracle_consistent(instance)
        # Serving immediately costs tx_good; idling costs hold + penalty.
        assert solution.value == pytest.approx(1.0)
        assert solution.outcome.grants == (0,)

    def test_single_packet_terminal_fade_idles(self):
        """One packet, channel bad forever, penalty below bad-state tx:
        the optimum eats the penalty rather than burning energy."""
        instance = PolicyInstance(
            arrivals=((1,),),
            channel_good=((False,),),
            tx_cost_bad=20.0,
            unserved_penalty=8.0,
        )
        solution = assert_oracle_consistent(instance)
        assert solution.outcome.grants == (None,)
        assert solution.value == pytest.approx(1.0 + 8.0)

    def test_zero_traffic_scores_zero(self):
        instance = PolicyInstance(
            arrivals=((0, 0), (0, 0)),
            channel_good=((True, True), (True, True)),
        )
        solution = assert_oracle_consistent(instance)
        assert solution.value == pytest.approx(0.0)
        assert solution.outcome.grants == (None, None)


class TestExhaustiveDominance:
    """DP never loses on *any* instance of the enumerated grids."""

    def test_one_client_three_slots(self):
        count = 0
        for instance in enumerate_instances(1, 3, max_arrival=2):
            assert_dp_dominates(instance)
            count += 1
        assert count == (3**3 - 1) * 2**3

    def test_two_clients_two_slots(self):
        count = 0
        for instance in enumerate_instances(2, 2):
            assert_dp_dominates(instance)
            count += 1
        assert count == (2**4 - 1) * 2**4

    @pytest.mark.slow
    def test_two_clients_three_slots_full(self):
        count = 0
        for instance in enumerate_instances(2, 3):
            assert_dp_dominates(instance)
            count += 1
        assert count == (2**6 - 1) * 2**6

    @pytest.mark.slow
    def test_three_clients_two_slots_full(self):
        for instance in enumerate_instances(3, 2):
            assert_dp_dominates(instance)


class TestRandomDominance:
    """Seeded random instances at the issue's full bounds."""

    def test_random_instances_reduced(self):
        for seed in range(12):
            instance = random_instance(seed, n_clients=2, horizon=5)
            assert_dp_dominates(instance)

    @pytest.mark.slow
    def test_random_instances_full(self):
        for seed in range(64):
            instance = random_instance(seed, n_clients=3, horizon=8)
            # Brute force is exponential at this size; the reduced-bound
            # grids already cross-check DP against it.
            assert_dp_dominates(instance, check_brute_force=False)

    def test_rollout_outcomes_are_reproducible(self):
        instance = random_instance(7, n_clients=3, horizon=8)
        for policy in HEURISTICS:
            assert rollout(instance, policy) == rollout(instance, policy)


def fade_instance(k, b, horizon):
    """The provably-threshold-optimal family: one client, ``k`` packets
    at t=0, channel bad for the first ``b`` slots then good forever."""
    arrivals = tuple((k,) if slot == 0 else (0,) for slot in range(horizon))
    channel = tuple((slot >= b,) for slot in range(horizon))
    return PolicyInstance(arrivals=arrivals, channel_good=channel)


class TestThresholdOptimality:
    """Where the threshold structure is provably optimal, the joint
    family *achieves* the DP optimum (not merely approaches it).

    On the single-client fade family the optimal policy is a backlog
    threshold: serve through the fade only when the queue is deep
    enough that waiting out the remaining bad slots costs more than the
    bad-state transmissions (1807.10128's structure, collapsed to a
    known realization). So min over θ of the joint policy must equal
    the clairvoyant DP on every family member.
    """

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("b", [0, 1, 2, 3])
    def test_best_joint_threshold_matches_dp(self, k, b):
        horizon = b + k + 2
        instance = fade_instance(k, b, horizon)
        solution = assert_oracle_consistent(instance)
        best_joint = min(
            rollout(
                instance, JointThresholdPolicy(threshold=theta)
            ).total_cost
            for theta in range(0, k + 2)
        )
        assert best_joint == pytest.approx(solution.value, abs=TOL)

    def test_threshold_is_load_bearing(self):
        """Sanity: on a deep-fade member the threshold choice actually
        changes the cost — the family is not degenerate."""
        instance = fade_instance(3, 3, 8)
        costs = {
            theta: rollout(
                instance, JointThresholdPolicy(threshold=theta)
            ).total_cost
            for theta in range(0, 5)
        }
        assert len(set(costs.values())) > 1
