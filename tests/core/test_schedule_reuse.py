"""Unit tests for the §5 schedule-reuse extension and the min-filter
margin of the adaptive compensator."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.schedule import BurstSlot, Schedule
from repro.core.scheduler import DynamicScheduler
from repro.experiments.scenarios import ScenarioConfig, build_scenario, client_ip
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket


def reuse_scenario(reuse=True, n_clients=2, seed=21):
    scenario = build_scenario(
        ScenarioConfig(n_clients=n_clients, seed=seed, ap_spike_prob=0.0,
                       medium_loss_rate=0.0)
    )
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=0.1,
        reuse_schedules=reuse,
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for handle in scenario.clients:
        handle.daemon = PowerAwareClient(handle.node, handle.wnic)
    return scenario, scheduler


def steady_feed(scenario, index, until, gap=0.03):
    sender = UdpSocket(scenario.video_server, 23000 + index)

    def process():
        while scenario.sim.now < until:
            sender.sendto(700, Endpoint(client_ip(index), 5004))
            yield scenario.sim.timeout(gap)

    scenario.sim.process(process())


class TestScheduleReuse:
    def test_steady_load_produces_reuses(self):
        scenario, scheduler = reuse_scenario(reuse=True)
        for index in (0, 1):
            UdpSocket(scenario.clients[index].node, 5004)
            steady_feed(scenario, index, until=6.0)
        scenario.sim.run(until=6.0)
        assert scheduler.schedules_reused > 0
        # reused intervals do not broadcast
        assert scheduler.schedules_sent + scheduler.schedules_reused >= 55

    def test_reuse_disabled_never_reuses(self):
        scenario, scheduler = reuse_scenario(reuse=False)
        UdpSocket(scenario.clients[0].node, 5004)
        steady_feed(scenario, 0, until=4.0)
        scenario.sim.run(until=4.0)
        assert scheduler.schedules_reused == 0

    def test_reuse_saves_schedule_wakes(self):
        def run(reuse):
            scenario, scheduler = reuse_scenario(reuse=reuse, seed=22)
            for index in (0, 1):
                UdpSocket(scenario.clients[index].node, 5004)
                steady_feed(scenario, index, until=6.0)
            scenario.sim.run(until=6.0)
            return sum(
                handle.daemon.schedules_heard for handle in scenario.clients
            )

        assert run(True) < run(False)

    def test_data_still_delivered_during_reuse(self):
        scenario, scheduler = reuse_scenario(reuse=True, seed=23)
        received = []
        UdpSocket(
            scenario.clients[0].node, 5004,
            on_receive=lambda p: received.append(p),
        )
        UdpSocket(scenario.clients[1].node, 5004)
        for index in (0, 1):
            steady_feed(scenario, index, until=6.0)
        scenario.sim.run(until=7.0)
        assert scheduler.schedules_reused > 0
        # ~200 packets fed; nearly all delivered
        assert len(received) > 150


class TestMinFilterMargin:
    def _schedule(self, srp, interval=0.1):
        return Schedule(seq=0, srp=srp, next_srp=srp + interval)

    def test_margin_zero_without_surprises(self):
        comp = AdaptiveCompensator(early_s=0.006)
        arrival = 0.001
        for k in range(10):
            comp.observe_arrival(self._schedule(0.1 * k), 0.1 * k + 0.001)
        assert comp.margin_s == pytest.approx(0.0)

    def test_margin_learns_early_arrivals(self):
        comp = AdaptiveCompensator(early_s=0.006)
        # alternate late (+8ms) and prompt (+0ms) arrivals
        for k in range(10):
            delay = 0.008 if k % 2 == 0 else 0.0
            comp.observe_arrival(self._schedule(0.1 * k), 0.1 * k + delay)
        assert comp.margin_s == pytest.approx(0.008, abs=1e-9)

    def test_margin_capped(self):
        comp = AdaptiveCompensator(early_s=0.006, max_margin_s=0.015)
        comp.observe_arrival(self._schedule(0.0), 0.05)  # huge delay
        comp.observe_arrival(self._schedule(0.1), 0.1)  # prompt
        assert comp.margin_s <= 0.015

    def test_window_zero_disables_margin(self):
        comp = AdaptiveCompensator(early_s=0.006, window=0)
        for k in range(10):
            delay = 0.008 if k % 2 == 0 else 0.0
            comp.observe_arrival(self._schedule(0.1 * k), 0.1 * k + delay)
        assert comp.margin_s == 0.0

    def test_predict_arrival_is_margin_free(self):
        comp = AdaptiveCompensator(early_s=0.006)
        schedule = self._schedule(5.0, interval=0.2)
        assert comp.predict_arrival(schedule, 5.001) == pytest.approx(5.201)
