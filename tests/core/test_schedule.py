"""Unit tests for schedule messages and burst slots."""

import pytest

from repro.core.schedule import BurstSlot, Schedule
from repro.errors import SchedulingError


def slot(ip="10.0.1.1", rendezvous=1.0, duration=0.05, nbytes=1000):
    return BurstSlot(
        client_ip=ip, rendezvous=rendezvous, duration=duration,
        bytes_allotted=nbytes,
    )


class TestBurstSlot:
    def test_end(self):
        assert slot(rendezvous=1.0, duration=0.25).end == pytest.approx(1.25)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            slot(duration=-0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SchedulingError):
            slot(nbytes=-5)


class TestSchedule:
    def test_interval(self):
        schedule = Schedule(seq=0, srp=1.0, next_srp=1.5)
        assert schedule.interval == pytest.approx(0.5)

    def test_next_srp_must_follow_srp(self):
        with pytest.raises(SchedulingError):
            Schedule(seq=0, srp=2.0, next_srp=2.0)

    def test_slot_before_srp_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(
                seq=0, srp=1.0, next_srp=1.5,
                slots=(slot(rendezvous=0.9),),
            )

    def test_overlapping_slots_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(
                seq=0, srp=1.0, next_srp=1.5,
                slots=(
                    slot(ip="a", rendezvous=1.01, duration=0.1),
                    slot(ip="b", rendezvous=1.05, duration=0.1),
                ),
            )

    def test_adjacent_slots_allowed(self):
        schedule = Schedule(
            seq=0, srp=1.0, next_srp=1.5,
            slots=(
                slot(ip="a", rendezvous=1.01, duration=0.1),
                slot(ip="b", rendezvous=1.11, duration=0.1),
            ),
        )
        assert len(schedule.slots) == 2

    def test_slot_for(self):
        schedule = Schedule(
            seq=0, srp=1.0, next_srp=1.5,
            slots=(slot(ip="10.0.1.7", rendezvous=1.02),),
        )
        assert schedule.slot_for("10.0.1.7") is not None
        assert schedule.slot_for("10.0.1.9") is None

    def test_wire_payload_scales_with_slots(self):
        empty = Schedule(seq=0, srp=0.0, next_srp=1.0)
        one = Schedule(seq=0, srp=0.0, next_srp=1.0, slots=(slot(rendezvous=0.5),))
        assert one.wire_payload == empty.wire_payload + 16

    def test_meta_round_trip(self):
        schedule = Schedule(
            seq=7, srp=2.0, next_srp=2.5, repeats_next=True,
            slots=(
                slot(ip="a", rendezvous=2.01, duration=0.1, nbytes=500),
                slot(ip="b", rendezvous=2.12, duration=0.2, nbytes=900),
            ),
        )
        parsed = Schedule.from_meta(schedule.as_meta())
        assert parsed == schedule

    def test_malformed_meta_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule.from_meta({"schedule": {"seq": 1}})
        with pytest.raises(SchedulingError):
            Schedule.from_meta({})
