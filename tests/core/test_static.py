"""Unit tests for the static TDMA schedule."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.static_schedule import (
    StaticClient,
    StaticLayout,
    StaticScheduler,
    StaticSlot,
    build_layout,
)
from repro.errors import SchedulingError
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket


class TestLayout:
    def test_equal_shares(self):
        layout = build_layout([client_ip(i) for i in range(4)], interval_s=0.1)
        durations = {slot.duration for slot in layout.slots}
        assert len(durations) == 1  # all equal
        assert layout.slots[-1].offset + layout.slots[-1].duration <= 0.1

    def test_tcp_slot_carved_from_head(self):
        layout = build_layout(
            [client_ip(0)], interval_s=0.5, tcp_weight=0.33,
            tcp_clients=[client_ip(1)],
        )
        assert layout.tcp_slot_s == pytest.approx(0.165)
        assert layout.slots[0].offset > layout.tcp_slot_s

    def test_bad_tcp_weight_rejected(self):
        with pytest.raises(SchedulingError):
            build_layout([client_ip(0)], interval_s=0.5, tcp_weight=1.0)

    def test_no_clients_rejected(self):
        with pytest.raises(SchedulingError):
            build_layout([], interval_s=0.5)

    def test_interval_too_small_rejected(self):
        with pytest.raises(SchedulingError):
            build_layout([client_ip(i) for i in range(50)], interval_s=0.01)

    def test_meta_round_trip(self):
        layout = build_layout(
            [client_ip(0), client_ip(1)], interval_s=0.1,
            tcp_weight=0.2, tcp_clients=[client_ip(2)], epoch=3.5,
        )
        parsed = StaticLayout.from_meta(layout.as_meta())
        assert parsed == layout

    def test_slot_for(self):
        layout = build_layout([client_ip(0)], interval_s=0.1)
        assert layout.slot_for(client_ip(0)) is not None
        assert layout.slot_for("nope") is None


def static_scenario(n_clients=2, interval=0.1, tcp_weight=0.0, tcp_ips=()):
    scenario = build_scenario(
        ScenarioConfig(
            n_clients=n_clients, seed=3, ap_spike_prob=0.0,
            medium_loss_rate=0.0,
        )
    )
    udp_ips = [
        client_ip(i) for i in range(n_clients) if client_ip(i) not in tcp_ips
    ]
    layout = build_layout(
        udp_ips, interval_s=interval, tcp_weight=tcp_weight,
        tcp_clients=tcp_ips,
    )
    scheduler = StaticScheduler(
        scenario.proxy, calibrate(scenario.medium), layout
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for handle in scenario.clients:
        handle.daemon = StaticClient(handle.node, handle.wnic)
    return scenario


class TestStaticExecution:
    def test_udp_delivered_in_fixed_slots(self):
        scenario = static_scenario(n_clients=2, interval=0.1)
        received = {0: [], 1: []}
        for index in (0, 1):
            UdpSocket(
                scenario.clients[index].node, 5004,
                on_receive=lambda p, i=index: received[i].append(
                    scenario.sim.now
                ),
            )
        sender = UdpSocket(scenario.video_server, 20000)

        def feed():
            while scenario.sim.now < 3.0:
                for index in (0, 1):
                    sender.sendto(700, Endpoint(client_ip(index), 5004))
                yield scenario.sim.timeout(0.05)

        scenario.sim.process(feed())
        scenario.sim.run(until=4.0)
        assert len(received[0]) > 20
        assert len(received[1]) > 20

    def test_clients_sleep_most_of_the_time(self):
        scenario = static_scenario(n_clients=2, interval=0.1)
        UdpSocket(scenario.clients[0].node, 5004)
        UdpSocket(scenario.clients[1].node, 5004)
        sender = UdpSocket(scenario.video_server, 20000)

        def feed():
            while scenario.sim.now < 4.0:
                sender.sendto(700, Endpoint(client_ip(0), 5004))
                yield scenario.sim.timeout(0.1)

        scenario.sim.process(feed())
        scenario.sim.run(until=5.0)
        for handle in scenario.clients:
            # no schedule wake-ups at all -> low duty cycle
            assert handle.wnic.awake_time(5.0) < 1.8

    def test_no_schedule_broadcasts_after_start(self):
        scenario = static_scenario(n_clients=1, interval=0.1)
        scenario.sim.run(until=3.0)
        broadcasts = [
            f for f in scenario.monitor.frames if f.broadcast
        ]
        # exactly the two layout announcements, nothing per interval
        assert len(broadcasts) == 2

    def test_static_beats_dynamic_for_identical_streams(self):
        """Paper §4.3: static saves more for identical-fidelity loads."""
        from repro.core.client import PowerAwareClient
        from repro.core.scheduler import DynamicScheduler

        def run(kind):
            scenario = build_scenario(
                ScenarioConfig(n_clients=2, seed=3, ap_spike_prob=0.0,
                               medium_loss_rate=0.0)
            )
            model = calibrate(scenario.medium)
            if kind == "static":
                layout = build_layout(
                    [client_ip(0), client_ip(1)], interval_s=0.1
                )
                scenario.proxy.attach_scheduler(
                    StaticScheduler(scenario.proxy, model, layout)
                )
            else:
                scenario.proxy.attach_scheduler(
                    DynamicScheduler(scenario.proxy, model, interval_s=0.1)
                )
            scenario.proxy.start()
            for handle in scenario.clients:
                if kind == "static":
                    handle.daemon = StaticClient(handle.node, handle.wnic)
                else:
                    handle.daemon = PowerAwareClient(handle.node, handle.wnic)
                UdpSocket(handle.node, 5004)
            sender = UdpSocket(scenario.video_server, 20000)

            def feed():
                # Identical steady streams with data in *every* interval,
                # matching the paper's identical-fidelity setup.
                while scenario.sim.now < 6.0:
                    for i in (0, 1):
                        sender.sendto(500, Endpoint(client_ip(i), 5004))
                    yield scenario.sim.timeout(0.04)

            scenario.sim.process(feed())
            scenario.sim.run(until=6.0)
            return sum(
                handle.wnic.awake_time(6.0) for handle in scenario.clients
            )

        assert run("static") < run("dynamic")
