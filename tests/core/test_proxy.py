"""Unit tests for the transparent proxy: interception, splitting, spoofing."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.scheduler import DynamicScheduler
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    WEB_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.net.tcp import TcpConnection
from repro.workloads.web import HTTP_PORT, WebServerApp


def scheduled_scenario(n_clients=2, seed=1, interval=0.25):
    scenario = build_scenario(ScenarioConfig(n_clients=n_clients, seed=seed))
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=interval
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    return scenario


class TestConfiguration:
    def test_needs_clients(self):
        from repro.core.proxy import TransparentProxy
        from repro.sim import Simulator

        with pytest.raises(ConfigurationError):
            TransparentProxy(Simulator(), "p", "10.0.0.1", set())

    def test_start_requires_scheduler(self):
        scenario = build_scenario(ScenarioConfig(n_clients=1))
        with pytest.raises(ConfigurationError):
            scenario.proxy.start()

    def test_double_scheduler_rejected(self):
        scenario = scheduled_scenario()
        with pytest.raises(ConfigurationError):
            scenario.proxy.attach_scheduler(object())


class TestUdpInterception:
    def test_downlink_udp_is_buffered_not_forwarded(self):
        scenario = build_scenario(ScenarioConfig(n_clients=1, seed=1))
        received = []
        UdpSocket(
            scenario.clients[0].node, 5004,
            on_receive=lambda p: received.append(p),
        )
        UdpSocket(scenario.video_server, 20000).sendto(
            700, Endpoint(client_ip(0), 5004)
        )
        scenario.sim.run(until=1.0)
        assert received == []  # no scheduler running: stays buffered
        assert scenario.proxy.queue_for(client_ip(0)).bytes_pending == 700
        assert scenario.proxy.udp_packets_intercepted == 1

    def test_buffered_udp_is_burst_with_server_source(self):
        scenario = scheduled_scenario(n_clients=1)
        received = []
        UdpSocket(
            scenario.clients[0].node, 5004,
            on_receive=lambda p: received.append(p),
        )
        UdpSocket(scenario.video_server, 20000).sendto(
            700, Endpoint(client_ip(0), 5004)
        )
        scenario.sim.run(until=1.0)
        assert len(received) == 1
        # Transparency: the client sees the server's address.
        assert received[0].src.ip == VIDEO_SERVER_IP
        assert received[0].tos_marked  # single packet = last of burst

    def test_uplink_udp_passes_through(self):
        scenario = build_scenario(ScenarioConfig(n_clients=1, seed=1))
        received = []
        UdpSocket(
            scenario.video_server, 7000, on_receive=lambda p: received.append(p)
        )
        UdpSocket(scenario.clients[0].node, 6000).sendto(
            50, Endpoint(VIDEO_SERVER_IP, 7000)
        )
        scenario.sim.run(until=1.0)
        assert len(received) == 1


class TestTcpSplitting:
    def test_split_creates_two_spoofed_connections(self):
        scenario = scheduled_scenario(n_clients=1)
        WebServerApp(scenario.web_server)
        client_node = scenario.clients[0].node
        conn = TcpConnection.connect(client_node, Endpoint(WEB_SERVER_IP, HTTP_PORT))
        scenario.sim.run(until=1.0)
        assert conn.state == "ESTABLISHED"
        assert scenario.proxy.tcp_connections_split == 1
        proxy_keys = set(scenario.proxy.tcp_connections)
        client_ep = conn.local
        server_ep = Endpoint(WEB_SERVER_IP, HTTP_PORT)
        assert (server_ep, client_ep) in proxy_keys  # client side
        assert (client_ep, server_ep) in proxy_keys  # server side
        assert len(scenario.proxy.spoof_table) == 2

    def test_server_sees_client_address(self):
        scenario = scheduled_scenario(n_clients=1)
        sources = []
        scenario.web_server.taps.append(
            lambda p, i: (sources.append(p.src.ip), False)[1]
        )
        WebServerApp(scenario.web_server)
        conn = TcpConnection.connect(
            scenario.clients[0].node, Endpoint(WEB_SERVER_IP, HTTP_PORT)
        )
        scenario.sim.run(until=1.0)
        assert set(sources) == {client_ip(0)}

    def test_wireless_side_never_shows_proxy_address(self):
        """The transparency claim, checked against the sniffer capture."""
        scenario = scheduled_scenario(n_clients=1)
        WebServerApp(scenario.web_server)
        client_node = scenario.clients[0].node
        conn = TcpConnection.connect(client_node, Endpoint(WEB_SERVER_IP, HTTP_PORT))
        conn.on_established = lambda c: conn.send(350)
        scenario.sim.run(until=2.0)
        proxy_ip = scenario.proxy.ip
        for frame in scenario.monitor.frames:
            if frame.proto == "tcp":
                assert proxy_ip not in (frame.src_ip, frame.dst_ip)

    def test_server_data_buffered_then_burst(self):
        scenario = scheduled_scenario(n_clients=1)
        WebServerApp(scenario.web_server)
        client_node = scenario.clients[0].node
        delivered = []
        conn = TcpConnection.connect(
            client_node,
            Endpoint(WEB_SERVER_IP, HTTP_PORT),
            on_data=lambda n, p: delivered.append(n),
        )

        def on_established(c):
            conn.on_segment_tx = lambda p: p.meta.setdefault("object_size", 9000)
            conn.send(350)

        conn.on_established = on_established
        scenario.sim.run(until=3.0)
        assert sum(delivered) == 9000

    def test_duplicate_syn_does_not_create_second_split(self):
        scenario = scheduled_scenario(n_clients=1)
        WebServerApp(scenario.web_server)
        client_node = scenario.clients[0].node
        conn = TcpConnection.connect(client_node, Endpoint(WEB_SERVER_IP, HTTP_PORT))
        scenario.sim.run(until=0.01)
        # Simulate a retransmitted SYN reaching the proxy again.
        from repro.net.packet import Packet, TcpFlags

        dup = Packet(
            "tcp", conn.local, conn.remote, flags=TcpFlags.SYN,
        )
        scenario.proxy._intercept_tcp(dup, scenario.proxy.air)
        scenario.sim.run(until=1.0)
        assert scenario.proxy.tcp_connections_split == 1


class TestMemoryClaim:
    def test_peak_buffer_accounting(self):
        scenario = build_scenario(ScenarioConfig(n_clients=2, seed=1))
        sender = UdpSocket(scenario.video_server, 20000)
        for i in range(2):
            for _ in range(10):
                sender.sendto(700, Endpoint(client_ip(i), 5004))
        scenario.sim.run(until=1.0)
        assert scenario.proxy.buffered_bytes == 14_000
        assert scenario.proxy.peak_buffered_bytes == 14_000
