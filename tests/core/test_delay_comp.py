"""Unit tests for delay-compensation algorithms."""

import pytest

from repro.core.delay_comp import (
    AdaptiveCompensator,
    FixedClockCompensator,
    OracleCompensator,
)
from repro.core.schedule import BurstSlot, Schedule
from repro.errors import ConfigurationError


def make_schedule(srp=10.0, interval=0.5, rp_offset=0.05, duration=0.02):
    return Schedule(
        seq=1, srp=srp, next_srp=srp + interval,
        slots=(
            BurstSlot(
                client_ip="10.0.1.1",
                rendezvous=srp + rp_offset,
                duration=duration,
                bytes_allotted=100,
            ),
        ),
    )


class TestAdaptiveCompensator:
    def test_negative_early_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveCompensator(early_s=-0.001)

    def test_schedule_wake_anchored_on_arrival(self):
        comp = AdaptiveCompensator(early_s=0.006)
        schedule = make_schedule(srp=10.0, interval=0.5)
        # schedule arrived 3 ms late (AP delay)
        wake = comp.next_schedule_wake(schedule, arrival=10.003)
        assert wake == pytest.approx(10.003 + 0.5 - 0.006)

    def test_burst_wake_uses_relative_offset(self):
        comp = AdaptiveCompensator(early_s=0.006)
        schedule = make_schedule(srp=10.0, rp_offset=0.05)
        wake = comp.burst_wake(
            schedule, arrival=10.002, slot=schedule.slots[0]
        )
        assert wake == pytest.approx(10.002 + 0.05 - 0.006)

    def test_clock_offset_cancels(self):
        """A constant offset between clocks does not shift the wake
        relative to the (equally offset) arrival."""
        comp = AdaptiveCompensator(early_s=0.004)
        schedule = make_schedule(srp=100.0)
        wake_a = comp.next_schedule_wake(schedule, arrival=100.001)
        # same schedule observed by a client whose arrival timestamp is
        # shifted by delta (its clock differs by delta)
        delta = 7.3
        wake_b = comp.next_schedule_wake(schedule, arrival=100.001 + delta)
        assert wake_b - wake_a == pytest.approx(delta)


class TestFixedClockCompensator:
    def test_accurate_offset_matches_adaptive_intent(self):
        comp = FixedClockCompensator(early_s=0.006, clock_offset_estimate_s=0.0)
        schedule = make_schedule(srp=10.0, interval=0.5)
        wake = comp.next_schedule_wake(schedule, arrival=10.002)
        assert wake == pytest.approx(10.5 - 0.006)

    def test_wrong_offset_shifts_every_wake(self):
        wrong = FixedClockCompensator(early_s=0.006, clock_offset_estimate_s=0.05)
        right = FixedClockCompensator(early_s=0.006, clock_offset_estimate_s=0.0)
        schedule = make_schedule()
        slot = schedule.slots[0]
        assert wrong.burst_wake(schedule, 10.0, slot) - right.burst_wake(
            schedule, 10.0, slot
        ) == pytest.approx(0.05)


class TestOracleCompensator:
    def test_zero_early_amount(self):
        comp = OracleCompensator()
        assert comp.early_s == 0.0
        schedule = make_schedule(srp=10.0, interval=0.5)
        assert comp.next_schedule_wake(schedule, 10.0) == pytest.approx(10.5)
