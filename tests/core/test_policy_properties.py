"""Property-based tests for the scheduling-policy family.

Two layers:

* **policy level** — :meth:`SchedulingPolicy.admit` is a pure function
  from view snapshots to admitted keys: subset of the backlogged
  clients, duplicate-free, deterministic, and each policy's defining
  invariant (dynamic admits everyone, channel never starves, joint is
  a backlog threshold).
* **scheduler level** — whatever the policy decides, the schedule the
  proxy broadcasts stays well-formed: no slot for silenced/departed
  clients, non-overlapping in-interval slots, byte-identical schedules
  for the same seed, and work conservation on an all-good channel
  (every policy admits exactly what the paper's dynamic policy would).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth_model import calibrate
from repro.core.policy import (
    POLICY_NAMES,
    ChannelAwarePolicy,
    ClientView,
    JointThresholdPolicy,
    PaperDynamicPolicy,
    make_policy,
)
from repro.core.scheduler import DynamicScheduler
from repro.experiments.scenarios import ScenarioConfig, build_scenario, client_ip
from repro.net.addr import Endpoint
from repro.net.packet import Packet

ALL_POLICIES = (
    PaperDynamicPolicy(),
    ChannelAwarePolicy(max_defer=0),
    ChannelAwarePolicy(max_defer=2),
    JointThresholdPolicy(threshold=1),
    JointThresholdPolicy(threshold=3),
)


def views_from(raw):
    """Build a unique-key view list from raw (backlog, good, deferred)."""
    return [
        ClientView(
            key=f"10.0.1.{i + 2}",
            backlog=backlog,
            channel_good=good,
            deferred=deferred,
        )
        for i, (backlog, good, deferred) in enumerate(raw)
    ]


view_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=8,
).map(views_from)


class TestAdmitContract:
    @given(raw=view_lists)
    @settings(max_examples=200, deadline=None)
    def test_subset_unique_deterministic(self, raw):
        backlogged = {view.key for view in raw if view.backlog > 0}
        for policy in ALL_POLICIES:
            admitted = policy.admit(raw)
            assert set(admitted) <= backlogged, policy
            assert len(admitted) == len(set(admitted)), policy
            assert policy.admit(raw) == admitted, policy
            assert policy.admit(tuple(raw)) == admitted, policy

    @given(raw=view_lists)
    @settings(max_examples=200, deadline=None)
    def test_dynamic_admits_every_backlogged_client(self, raw):
        admitted = PaperDynamicPolicy().admit(raw)
        assert set(admitted) == {v.key for v in raw if v.backlog > 0}

    @given(raw=view_lists, max_defer=st.integers(min_value=0, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_channel_policy_never_starves(self, raw, max_defer):
        """Good-channel and overdue clients are in; fresh bad-channel
        clients are out — nobody waits past ``max_defer`` intervals."""
        admitted = set(ChannelAwarePolicy(max_defer=max_defer).admit(raw))
        for view in raw:
            if view.backlog == 0:
                assert view.key not in admitted
            elif view.channel_good or view.deferred >= max_defer:
                assert view.key in admitted
            else:
                assert view.key not in admitted

    @given(raw=view_lists, threshold=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=200, deadline=None)
    def test_joint_policy_is_a_backlog_threshold(self, raw, threshold):
        admitted = set(JointThresholdPolicy(threshold=threshold).admit(raw))
        for view in raw:
            if view.backlog == 0:
                assert view.key not in admitted
            elif view.channel_good or view.backlog >= threshold:
                assert view.key in admitted
            else:
                assert view.key not in admitted

    @given(raw=view_lists)
    @settings(max_examples=200, deadline=None)
    def test_work_conservation_on_all_good_channel(self, raw):
        """With every channel good, each policy admits exactly the set
        the paper's dynamic policy would — channel awareness costs
        nothing when there is nothing to be aware of."""
        sunny = [
            ClientView(
                key=v.key, backlog=v.backlog,
                channel_good=True, deferred=v.deferred,
            )
            for v in raw
        ]
        baseline = set(PaperDynamicPolicy().admit(sunny))
        for policy in ALL_POLICIES:
            assert set(policy.admit(sunny)) == baseline, policy


def scenario_with_queues(depths, seed=1):
    """A built scenario with the given per-client queue depths pushed."""
    scenario = build_scenario(ScenarioConfig(n_clients=len(depths), seed=seed))
    for i, nbytes in enumerate(depths):
        queue = scenario.proxy.queue_for(client_ip(i))
        remaining = nbytes
        while remaining > 0:
            size = min(700, remaining)
            queue.push_udp(
                Packet(
                    "udp", Endpoint("10.0.2.1", 20000),
                    Endpoint(client_ip(i), 5004), payload_size=size,
                )
            )
            remaining -= size
    return scenario


def make_scheduler(scenario, policy_name, **kwargs):
    return DynamicScheduler(
        scenario.proxy,
        calibrate(scenario.medium),
        policy=make_policy(policy_name, threshold=2000, max_defer=2),
        **kwargs,
    )


depth_lists = st.lists(
    st.integers(min_value=0, max_value=60_000), min_size=1, max_size=6
)


class TestScheduleShape:
    @given(depths=depth_lists, policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_slots_never_overlap_and_fit_the_interval(
        self, depths, policy_name
    ):
        scenario = scenario_with_queues(depths)
        scheduler = make_scheduler(scenario, policy_name, interval_s=0.5)
        schedule = scheduler.build_schedule(srp=0.0)
        cursor = schedule.srp
        for slot in schedule.slots:
            assert slot.rendezvous >= cursor
            assert slot.duration >= 0.0
            cursor = slot.end
        assert cursor <= schedule.next_srp

    @given(depths=depth_lists, policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_schedules_are_byte_identical(
        self, depths, policy_name
    ):
        schedules = []
        for _ in range(2):
            scenario = scenario_with_queues(depths)
            scheduler = make_scheduler(scenario, policy_name, interval_s=0.5)
            schedules.append(scheduler.build_schedule(srp=0.0))
        assert schedules[0] == schedules[1]

    @given(depths=depth_lists, policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_no_slot_for_silenced_clients(self, depths, policy_name):
        scenario = scenario_with_queues(depths)
        scheduler = make_scheduler(scenario, policy_name, interval_s=0.5)
        silenced = {
            client_ip(i) for i in range(len(depths)) if i % 2 == 0
        }
        scheduler._silenced = set(silenced)
        schedule = scheduler.build_schedule(srp=0.0)
        assert not {slot.client_ip for slot in schedule.slots} & silenced

    @given(depths=depth_lists, policy_name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_work_conservation_without_a_channel_model(
        self, depths, policy_name
    ):
        """No channel model means every channel reads good, so every
        policy schedules exactly the clients the dynamic policy does —
        the determinism-preservation contract at the schedule level."""
        scenario = scenario_with_queues(depths)
        assert scenario.proxy.channel is None
        baseline = scenario_with_queues(depths)
        schedule = make_scheduler(
            scenario, policy_name, interval_s=0.5
        ).build_schedule(srp=0.0)
        expected = make_scheduler(
            baseline, "dynamic", interval_s=0.5
        ).build_schedule(srp=0.0)
        assert {s.client_ip for s in schedule.slots} == {
            s.client_ip for s in expected.slots
        }
        assert schedule == expected
