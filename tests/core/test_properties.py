"""Property-based tests for core proxy data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth_model import LinearCostModel
from repro.core.queues import ClientQueue
from repro.net.addr import Endpoint
from repro.net.packet import Packet


class FakeConn:
    def __init__(self, name):
        self.name = name


def udp_packet(size):
    return Packet(
        "udp", Endpoint("10.0.2.1", 20000), Endpoint("10.0.1.1", 5004),
        payload_size=size,
    )


#: operations: ("udp", size) | ("tcp", conn_index, size) | ("pop", budget)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("udp"), st.integers(1, 2000)),
        st.tuples(st.just("tcp"), st.integers(0, 2), st.integers(1, 5000)),
        st.tuples(st.just("pop"), st.integers(0, 8000)),
    ),
    min_size=1,
    max_size=60,
)


class TestClientQueueProperties:
    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_byte_conservation(self, ops):
        """pushed == popped + pending at every point."""
        queue = ClientQueue("c")
        conns = [FakeConn(i) for i in range(3)]
        pushed = 0
        popped = 0
        for op in ops:
            if op[0] == "udp":
                queue.push_udp(udp_packet(op[1]))
                pushed += op[1]
            elif op[0] == "tcp":
                queue.push_tcp(conns[op[1]], op[2])
                pushed += op[2]
            else:
                popped += sum(e.nbytes for e in queue.pop_up_to(op[1]))
            assert queue.bytes_pending == pushed - popped
            assert queue.bytes_pending >= 0
            assert queue.peak_bytes >= queue.bytes_pending

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_pop_never_exceeds_budget_except_single_oversize(self, ops):
        queue = ClientQueue("c")
        conns = [FakeConn(i) for i in range(3)]
        for op in ops:
            if op[0] == "udp":
                queue.push_udp(udp_packet(op[1]))
            elif op[0] == "tcp":
                queue.push_tcp(conns[op[1]], op[2])
            else:
                budget = op[1]
                taken = queue.pop_up_to(budget)
                total = sum(e.nbytes for e in taken)
                if total > budget:
                    # only lawful when a single oversized udp packet pops
                    assert len(taken) == 1 and taken[0].kind == "udp"

    @given(
        sizes=st.lists(st.integers(1, 3000), min_size=1, max_size=30),
        budget=st.integers(1, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_udp_fifo_order_preserved(self, sizes, budget):
        queue = ClientQueue("c")
        for index, size in enumerate(sizes):
            packet = udp_packet(size)
            packet.meta["index"] = index
            queue.push_udp(packet)
        seen = []
        while not queue.empty:
            for entry in queue.pop_up_to(budget):
                seen.append(entry.packet.meta["index"])
        assert seen == sorted(seen)
        assert len(seen) == len(sizes)


class TestCostModelProperties:
    @given(
        overhead=st.floats(1e-5, 5e-3),
        per_byte=st.floats(1e-8, 1e-5),
        nbytes=st.integers(0, 10_000_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_burst_cost_monotone_in_bytes(self, overhead, per_byte, nbytes):
        model = LinearCostModel(overhead_s=overhead, per_byte_s=per_byte)
        assert model.burst_cost(nbytes) <= model.burst_cost(nbytes + 1460)

    @given(
        overhead=st.floats(1e-5, 5e-3),
        per_byte=st.floats(1e-8, 1e-5),
        duration=st.floats(0.0, 2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_bytes_for_duration_round_trip(self, overhead, per_byte, duration):
        """bytes_for never claims more than fits."""
        model = LinearCostModel(overhead_s=overhead, per_byte_s=per_byte)
        nbytes = model.bytes_for(duration)
        assert model.burst_cost(nbytes) <= duration + 1e-9


class TestMarkingProperties:
    @given(
        hand_sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_one_marked_byte_per_marked_handoff(self, hand_sizes):
        """Each mark_last hand-off marks the segment carrying its final
        byte — no matter how the stream is segmented."""
        from repro.core.burster import MarkingController
        from repro.net.tcp import TcpConnection, TcpListener
        from tests.net.helpers import wire_pair

        sim, a, b, _ = wire_pair()
        TcpListener(b, 80, lambda conn: None)
        conn = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        sim.run(until=1.0)
        conn.cwnd = conn.peer_rwnd  # emit everything immediately
        marked_seqs = []
        b.taps.append(
            lambda p, i: (
                marked_seqs.append((p.seq, p.end_seq)) if p.tos_marked else None,
                False,
            )[1]
        )
        controller = MarkingController(conn)
        expected_marks = []
        for size in hand_sizes:
            mark_byte = conn.app_limit + size - 1
            controller.hand_bytes(size, mark_last=True)
            expected_marks.append(mark_byte)
        sim.run(until=30.0)
        # Every expected mark byte was covered by some marked segment.
        for mark_byte in expected_marks:
            assert any(s <= mark_byte < e for s, e in marked_seqs)
