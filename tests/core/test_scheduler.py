"""Unit tests for the dynamic scheduler's schedule construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth_model import calibrate
from repro.core.scheduler import DynamicScheduler
from repro.errors import SchedulingError
from repro.experiments.scenarios import ScenarioConfig, build_scenario, client_ip
from repro.net.addr import Endpoint
from repro.net.packet import Packet


def make_proxy_with_queues(pending: dict[str, int], n_clients=10):
    scenario = build_scenario(ScenarioConfig(n_clients=n_clients, seed=1))
    for ip, nbytes in pending.items():
        queue = scenario.proxy.queue_for(ip)
        remaining = nbytes
        while remaining > 0:
            size = min(700, remaining)
            queue.push_udp(
                Packet(
                    "udp", Endpoint("10.0.2.1", 20000), Endpoint(ip, 5004),
                    payload_size=size,
                )
            )
            remaining -= size
    return scenario


def make_scheduler(scenario, **kwargs):
    model = calibrate(scenario.medium)
    return DynamicScheduler(scenario.proxy, model, **kwargs)


class TestFixedSchedules:
    def test_empty_queues_give_empty_schedule(self):
        scenario = make_proxy_with_queues({})
        scheduler = make_scheduler(scenario, interval_s=0.5)
        schedule = scheduler.build_schedule(srp=0.0)
        assert schedule.slots == ()
        assert schedule.interval == pytest.approx(0.5)

    def test_proportional_shares(self):
        """Paper: each client gets a fraction of the interval
        proportional to its queue depth."""
        scenario = make_proxy_with_queues(
            {client_ip(0): 30_000, client_ip(1): 10_000}
        )
        scheduler = make_scheduler(scenario, interval_s=0.1)
        schedule = scheduler.build_schedule(srp=0.0)
        slots = {slot.client_ip: slot for slot in schedule.slots}
        ratio = (
            slots[client_ip(0)].bytes_allotted
            / slots[client_ip(1)].bytes_allotted
        )
        assert ratio == pytest.approx(3.0, rel=0.25)

    def test_light_load_fully_allotted(self):
        scenario = make_proxy_with_queues({client_ip(0): 2000})
        scheduler = make_scheduler(scenario, interval_s=0.5)
        schedule = scheduler.build_schedule(srp=0.0)
        assert schedule.slots[0].bytes_allotted == 2000

    def test_overload_respects_interval(self):
        scenario = make_proxy_with_queues(
            {client_ip(i): 200_000 for i in range(10)}
        )
        scheduler = make_scheduler(scenario, interval_s=0.1)
        schedule = scheduler.build_schedule(srp=0.0)
        assert schedule.slots[-1].end <= schedule.next_srp
        model = scheduler.cost_model
        total_cost = sum(
            model.burst_cost(slot.bytes_allotted) for slot in schedule.slots
        )
        assert total_cost < 0.1

    def test_interval_too_small_raises(self):
        scenario = make_proxy_with_queues({client_ip(0): 1000})
        scheduler = make_scheduler(scenario, interval_s=0.002)
        with pytest.raises(SchedulingError):
            scheduler.build_schedule(srp=0.0)

    def test_bad_interval_bounds_rejected(self):
        scenario = make_proxy_with_queues({})
        with pytest.raises(SchedulingError):
            make_scheduler(scenario, interval_s=-0.5)
        with pytest.raises(SchedulingError):
            make_scheduler(scenario, interval_s=None, min_interval_s=0.5,
                           max_interval_s=0.1)


class TestVariableSchedules:
    def test_light_load_clamps_to_minimum(self):
        scenario = make_proxy_with_queues({client_ip(0): 1000})
        scheduler = make_scheduler(scenario, interval_s=None)
        schedule = scheduler.build_schedule(srp=0.0)
        assert schedule.interval == pytest.approx(0.1)

    def test_interval_tracks_queue_drain_time(self):
        scenario = make_proxy_with_queues(
            {client_ip(i): 30_000 for i in range(5)}
        )
        scheduler = make_scheduler(scenario, interval_s=None)
        schedule = scheduler.build_schedule(srp=0.0)
        assert 0.1 < schedule.interval < 0.5
        # every queue fully allotted
        for slot in schedule.slots:
            assert slot.bytes_allotted == 30_000

    def test_heavy_load_clamps_to_maximum(self):
        scenario = make_proxy_with_queues(
            {client_ip(i): 500_000 for i in range(10)}
        )
        scheduler = make_scheduler(scenario, interval_s=None)
        schedule = scheduler.build_schedule(srp=0.0)
        assert schedule.interval == pytest.approx(0.5)
        # degraded to proportional shares: not everything fits
        assert sum(s.bytes_allotted for s in schedule.slots) < 5_000_000


class TestScheduleProperties:
    @given(
        depths=st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=1, max_size=8
        ),
        fixed=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_slots_never_overlap_and_fit_interval(self, depths, fixed):
        pending = {
            client_ip(i): depth
            for i, depth in enumerate(depths)
            if depth > 0
        }
        scenario = make_proxy_with_queues(pending, n_clients=max(8, len(depths)))
        scheduler = make_scheduler(
            scenario, interval_s=0.5 if fixed else None
        )
        schedule = scheduler.build_schedule(srp=3.0)
        previous_end = 3.0
        for slot in schedule.slots:
            assert slot.rendezvous >= previous_end - 1e-9
            previous_end = slot.end
        assert previous_end <= schedule.next_srp + 1e-9

    @given(
        depths=st.lists(
            st.integers(min_value=1, max_value=50_000), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_allotments_never_exceed_queue_depth(self, depths):
        pending = {client_ip(i): d for i, d in enumerate(depths)}
        scenario = make_proxy_with_queues(pending, n_clients=max(8, len(depths)))
        scheduler = make_scheduler(scenario, interval_s=0.5)
        schedule = scheduler.build_schedule(srp=0.0)
        for slot in schedule.slots:
            # udp packets are 700B so queue depth can exceed the ask
            assert slot.bytes_allotted <= pending[slot.client_ip]

    def test_rotation_changes_burst_order(self):
        scenario = make_proxy_with_queues(
            {client_ip(i): 5000 for i in range(4)}
        )
        scheduler = make_scheduler(scenario, interval_s=0.5)
        first = scheduler.build_schedule(srp=0.0)
        scheduler.seq += 1
        second = scheduler.build_schedule(srp=0.5)
        assert [s.client_ip for s in first.slots] != [
            s.client_ip for s in second.slots
        ]
        assert {s.client_ip for s in first.slots} == {
            s.client_ip for s in second.slots
        }
