"""Failure injection and dynamic-membership tests for the core system."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket


def scheduled_scenario(n_clients=2, seed=11, interval=0.1, **overrides):
    scenario = build_scenario(
        ScenarioConfig(n_clients=n_clients, seed=seed, **overrides)
    )
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=interval
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for handle in scenario.clients:
        handle.daemon = PowerAwareClient(
            handle.node, handle.wnic, AdaptiveCompensator()
        )
    return scenario


def awake_between(wnic, start, end, horizon):
    """Awake seconds inside [start, end), from the full transition log."""
    return sum(
        max(0.0, min(b, end) - max(a, start))
        for a, b in wnic.awake_intervals(horizon)
    )


def feed(scenario, index, until, gap=0.05, size=700):
    sender = UdpSocket(
        scenario.video_server, 21000 + index
    )

    def process():
        while scenario.sim.now < until:
            sender.sendto(size, Endpoint(client_ip(index), 5004))
            yield scenario.sim.timeout(gap)

    scenario.sim.process(process())


class TestChannelOutage:
    def test_clients_recover_from_total_outage(self):
        """A one-second RF blackout: all schedules and data lost; the
        clients must detect the misses, stay awake, and resynchronize
        once the channel returns."""
        scenario = scheduled_scenario()
        for index in (0, 1):
            UdpSocket(scenario.clients[index].node, 5004)
            feed(scenario, index, until=10.0)
        outage = {"active": False}
        scenario.medium.drop = lambda p: outage["active"]
        scenario.sim.run(until=3.0)
        outage["active"] = True
        scenario.sim.run(until=4.0)
        outage["active"] = False
        scenario.sim.run(until=10.0)
        for handle in scenario.clients:
            daemon = handle.daemon
            assert daemon.missed_schedules >= 1  # outage was noticed
            # ...and the client kept hearing schedules afterwards.
            assert daemon.schedules_heard > 50
            # asleep again by the end (resynchronized)
            assert awake_between(handle.wnic, 6.0, 10.0, 10.0) < 2.0

    def test_loss_burst_does_not_wedge_scheduler(self):
        scenario = scheduled_scenario()
        UdpSocket(scenario.clients[0].node, 5004)
        feed(scenario, 0, until=6.0)
        # 30% random loss for the whole run
        rng = scenario.streams.get("chaos")
        scenario.medium.drop = lambda p: bool(rng.random() < 0.3)
        scenario.sim.run(until=6.0)
        assert scenario.proxy.scheduler.schedules_sent > 40


class TestDynamicMembership:
    def test_client_joins_schedule_when_traffic_starts(self):
        """Paper Figure 2: client 4 has traffic during interval 1 and
        joins the schedule for interval 2."""
        scenario = scheduled_scenario(n_clients=3)
        for index in range(3):
            UdpSocket(scenario.clients[index].node, 5004)
        feed(scenario, 0, until=8.0)
        feed(scenario, 1, until=8.0)
        scenario.sim.run(until=3.0)
        daemon2 = scenario.clients[2].daemon
        assert daemon2.bursts_received == 0

        # Client 2's stream starts mid-run...
        feed(scenario, 2, until=8.0)
        scenario.sim.run(until=8.0)
        # ...and it starts receiving scheduled bursts.
        assert daemon2.bursts_received > 20

    def test_client_leaves_schedule_when_traffic_stops(self):
        scenario = scheduled_scenario(n_clients=2)
        for index in (0, 1):
            UdpSocket(scenario.clients[index].node, 5004)
        feed(scenario, 0, until=10.0)
        feed(scenario, 1, until=3.0)  # stops early
        scenario.sim.run(until=10.0)
        daemon1 = scenario.clients[1].daemon
        bursts_by_4s = None
        # after its stream stops, the client gets no more bursts but
        # keeps hearing schedules
        assert daemon1.schedules_heard > 80
        idle_tail = awake_between(scenario.clients[1].wnic, 5.0, 10.0, 10.0)
        busy_tail = awake_between(scenario.clients[0].wnic, 5.0, 10.0, 10.0)
        assert idle_tail < busy_tail


class TestSchedulerEdgeCases:
    def test_idle_proxy_keeps_broadcasting(self):
        scenario = scheduled_scenario(n_clients=1)
        scenario.sim.run(until=2.0)
        assert scenario.proxy.scheduler.schedules_sent >= 19

    def test_many_tiny_flows_one_client(self):
        scenario = scheduled_scenario(n_clients=1)
        UdpSocket(scenario.clients[0].node, 5004)
        sender = UdpSocket(scenario.video_server, 22000)

        def bursty():
            rng = scenario.streams.get("bursty")
            while scenario.sim.now < 5.0:
                for _ in range(int(rng.integers(1, 20))):
                    sender.sendto(int(rng.integers(40, 1400)),
                                  Endpoint(client_ip(0), 5004))
                yield scenario.sim.timeout(float(rng.uniform(0.01, 0.3)))

        scenario.sim.process(bursty())
        scenario.sim.run(until=6.0)
        queue = scenario.proxy.queue_for(client_ip(0))
        assert queue.bytes_pending == 0  # everything drained
