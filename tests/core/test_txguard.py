"""Unit tests for the transmit wake guard."""

import pytest

from repro.core.txguard import TransmitWakeGuard
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.net.tcp import TcpConnection, TcpListener
from repro.wnic import Wnic

from tests.net.helpers import wire_pair


def test_stray_udp_send_wakes_then_resleeps():
    sim, a, b, _link = wire_pair()
    wnic = Wnic(sim, "a", start_asleep=True)
    guard = TransmitWakeGuard(a, wnic)
    guard.daemon_sleeping = True
    socket = UdpSocket(a, 5000)
    sim.call_at(1.0, lambda: socket.sendto(64, Endpoint("10.0.0.2", 7000)))
    sim.run(until=0.9)
    assert not wnic.is_awake
    sim.run(until=1.001)
    assert wnic.is_awake  # woke for the transmission
    sim.run(until=1.1)
    assert not wnic.is_awake  # back asleep shortly after
    assert guard.tx_wakes == 1


def test_syn_holds_card_awake_through_handshake():
    sim, a, b, _link = wire_pair()
    TcpListener(b, 80, lambda conn: None)
    wnic = Wnic(sim, "a", start_asleep=True)
    guard = TransmitWakeGuard(a, wnic)
    guard.daemon_sleeping = True
    sim.call_at(1.0, lambda: TcpConnection.connect(a, Endpoint("10.0.0.2", 80)))
    sim.run(until=1.0001)  # before the SYN even reaches the wire's far end
    assert wnic.is_awake
    assert guard.busy_connections()
    sim.run(until=2.0)
    # handshake done; guard no longer busy (daemon would re-sleep at its
    # next sleep phase — the guard itself leaves the card up)
    assert not guard.busy_connections()


def test_sleep_until_defers_while_handshaking():
    sim, a, b, _link = wire_pair()
    TcpListener(b, 80, lambda conn: None)
    wnic = Wnic(sim, "a", start_asleep=False)
    guard = TransmitWakeGuard(a, wnic)
    TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    slept = []

    def daemon():
        yield from guard.sleep_until(0.5, min_sleep_gap_s=0.004)
        slept.append(sim.now)

    sim.process(daemon())
    sim.run(until=1.0)
    assert slept == [pytest.approx(0.5)]
    # The card went to sleep only after the handshake completed.
    sleep_transitions = [
        (t, s) for t, s in wnic.transitions if s.value == "sleep"
    ]
    assert sleep_transitions
    assert sleep_transitions[0][0] > 0.001  # not immediately


def test_sleep_until_short_gap_stays_awake():
    sim, a, b, _link = wire_pair()
    wnic = Wnic(sim, "a")
    guard = TransmitWakeGuard(a, wnic)

    def daemon():
        yield from guard.sleep_until(0.002, min_sleep_gap_s=0.004)

    sim.process(daemon())
    sim.run(until=0.01)
    assert wnic.wake_count == 0  # never cycled


def test_awake_card_ignores_tx():
    sim, a, b, _link = wire_pair()
    wnic = Wnic(sim, "a", start_asleep=False)
    guard = TransmitWakeGuard(a, wnic)
    UdpSocket(a, 5000).sendto(10, Endpoint("10.0.0.2", 7000))
    assert guard.tx_wakes == 0
