"""Unit tests for the power-aware client daemon."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.errors import SchedulingError
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.sim import Simulator
from repro.wnic import Wnic


def quiet_scenario(n_clients=1, seed=1, **scenario_overrides):
    """A scenario with no AP jitter spikes (deterministic-ish timing)."""
    config = ScenarioConfig(
        n_clients=n_clients, seed=seed, ap_spike_prob=0.0,
        medium_loss_rate=0.0, **scenario_overrides,
    )
    return build_scenario(config)


def with_dynamic_scheduler(scenario, interval=0.2, **client_kwargs):
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=interval
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    daemons = []
    for handle in scenario.clients:
        daemon = PowerAwareClient(
            handle.node, handle.wnic,
            AdaptiveCompensator(early_s=client_kwargs.pop("early_s", 0.006)),
            **client_kwargs,
        )
        handle.daemon = daemon
        daemons.append(daemon)
    return daemons


def test_requires_known_interface():
    sim = Simulator()
    from repro.net.node import Node

    node = Node(sim, "x", "10.0.0.1")
    with pytest.raises(SchedulingError):
        PowerAwareClient(node, Wnic(sim, "x"))


def test_client_hears_schedules_and_sleeps_between():
    scenario = quiet_scenario()
    (daemon,) = with_dynamic_scheduler(scenario, interval=0.2)
    scenario.sim.run(until=5.0)
    assert daemon.schedules_heard >= 20
    assert daemon.missed_schedules == 0
    handle = scenario.clients[0]
    awake = handle.wnic.awake_time(5.0)
    assert awake < 1.5  # mostly asleep with no traffic


def test_client_receives_burst_and_returns_to_sleep():
    scenario = quiet_scenario()
    (daemon,) = with_dynamic_scheduler(scenario, interval=0.2)
    received = []
    UdpSocket(
        scenario.clients[0].node, 5004, on_receive=lambda p: received.append(p)
    )
    sender = UdpSocket(scenario.video_server, 20000)

    def feed():
        while scenario.sim.now < 4.0:
            sender.sendto(700, Endpoint(client_ip(0), 5004))
            yield scenario.sim.timeout(0.1)

    scenario.sim.process(feed())
    scenario.sim.run(until=5.0)
    assert len(received) >= 30
    assert daemon.bursts_received >= 15
    assert daemon.marks_missed <= 2
    # The card sleeps most of the time despite steady traffic.
    assert scenario.clients[0].wnic.awake_time(5.0) < 2.0


def test_no_slot_means_no_burst_wake():
    """A client with no traffic only wakes for schedules."""
    scenario = quiet_scenario(n_clients=2)
    daemons = with_dynamic_scheduler(scenario, interval=0.2)
    # only client 0 gets traffic
    UdpSocket(scenario.clients[0].node, 5004)
    UdpSocket(scenario.clients[1].node, 5004)
    sender = UdpSocket(scenario.video_server, 20000)

    def feed():
        while scenario.sim.now < 4.0:
            sender.sendto(700, Endpoint(client_ip(0), 5004))
            yield scenario.sim.timeout(0.1)

    scenario.sim.process(feed())
    scenario.sim.run(until=5.0)
    assert daemons[1].bursts_received == 0
    assert daemons[1].schedules_heard > 15
    idle_awake = scenario.clients[1].wnic.awake_time(5.0)
    busy_awake = scenario.clients[0].wnic.awake_time(5.0)
    assert idle_awake < busy_awake


def test_early_wait_accumulates():
    scenario = quiet_scenario()
    (daemon,) = with_dynamic_scheduler(scenario, interval=0.2, early_s=0.01)
    scenario.sim.run(until=3.0)
    # Waking 10 ms early for every schedule must show up as early wait.
    assert daemon.early_wait_s > 0.05


def test_missed_schedule_keeps_client_awake_until_next():
    """Force a miss by sending one schedule far off its cadence."""
    scenario = quiet_scenario()
    (daemon,) = with_dynamic_scheduler(scenario, interval=0.2)
    sim = scenario.sim
    sim.run(until=2.05)
    heard_before = daemon.schedules_heard
    # Sabotage: put the client to sleep right where the next schedule
    # would arrive by delaying it artificially — we emulate by pausing
    # the proxy's scheduler process via a large AP outage: drop the
    # next schedule broadcast on the medium.
    drops = {"armed": True}

    def drop_schedule(packet):
        if drops["armed"] and packet.is_broadcast:
            drops["armed"] = False
            return True
        return False

    scenario.medium.drop = drop_schedule
    sim.run(until=3.0)
    assert daemon.missed_schedules >= 1
    assert daemon.miss_recovery_s > 0.1  # stayed awake till the next one
    assert daemon.schedules_heard > heard_before


def test_counters_property_shape():
    scenario = quiet_scenario()
    (daemon,) = with_dynamic_scheduler(scenario)
    scenario.sim.run(until=1.0)
    counters = daemon.counters
    assert set(counters) == {
        "missed_schedules", "schedules_heard", "early_wait_s",
        "miss_recovery_s", "fallbacks", "resyncs",
        "max_consecutive_misses",
    }
