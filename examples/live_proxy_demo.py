#!/usr/bin/env python
"""The live asyncio proxy on real localhost sockets.

Starts an origin byte server, the scheduling proxy and two power-aware
clients inside one event loop; each client downloads a paced stream
through the proxy while its *virtual* WNIC logs sleep/wake transitions
around the schedule and burst rendezvous points. Prints the wall-clock
energy estimate. (The evaluation numbers come from the discrete-event
simulator — see DESIGN.md for why; this demo shows the same mechanism
working over real sockets.)

Run:  python examples/live_proxy_demo.py
"""

import asyncio

from repro.runtime.demo import run_demo


def main() -> None:
    results = asyncio.run(
        run_demo(n_clients=2, file_size=300_000, burst_interval_s=0.1)
    )
    print("client     bytes     schedules  marks  awake   est. saved")
    for result in results:
        print(
            f"{result.client_id:<9} {result.bytes_received:>8}"
            f"  {result.schedules_heard:>8}  {result.marks_heard:>5}"
            f"  {result.awake_fraction*100:5.1f}%"
            f"  {result.estimated_savings_pct:6.1f}%"
        )


if __name__ == "__main__":
    main()
