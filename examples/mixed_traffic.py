#!/usr/bin/env python
"""Mixed video + web clients sharing one cell (Figure 5).

Seven clients stream video while three browse the web through the same
proxy. Shows per-kind savings, the web clients' page/object statistics
and the end-to-end latency cost of burst-scheduling TCP.

Run:  python examples/mixed_traffic.py  [--quick]
"""

import sys

from repro.experiments.runner import mixed, run_experiment


def main(quick: bool = False) -> None:
    duration = 30.0 if quick else 119.0
    video = [56, 56, 128] if quick else [56, 56, 128, 128, 256, 256, 512]
    n_web = 1 if quick else 3
    result = run_experiment(
        mixed(video, n_web=n_web, burst_interval_s=0.5,
              duration_s=duration, seed=2)
    )

    print("kind    client      saved    loss   detail")
    for report in result.clients:
        if report.kind == "video":
            detail = f"{report.extra['app_bytes']/1024:.0f} KiB streamed"
            if report.extra.get("downshifts"):
                detail += f", {report.extra['downshifts']} downshifts"
        else:
            detail = (
                f"{report.extra['pages_loaded']} pages, "
                f"{report.extra['objects_loaded']} objects, "
                f"object latency "
                f"{report.extra['mean_object_latency_s']*1000:.0f} ms"
            )
        print(
            f"{report.kind:<7} {report.name:<10}"
            f" {report.energy_saved_pct:6.1f}%"
            f"  {report.loss_pct:5.2f}%  {detail}"
        )
    print(
        f"\nUDP avg {result.video_summary.avg_saved_pct:.1f}% | "
        f"TCP avg {result.tcp_summary.avg_saved_pct:.1f}% "
        f"(paper: 50-90% across these configurations)"
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
