#!/usr/bin/env python
"""Video streaming across fidelities and burst intervals (Figure 4).

Sweeps the paper's stream fidelities at two fixed burst intervals and
the variable policy, showing how savings fall with bandwidth and how
interval choice trades wake-up overhead against buffering delay. Also
demonstrates the RealServer-style adaptation: ten 512 kbps streams
exceed the cell's effective bandwidth, and the server downshifts.

Run:  python examples/video_streaming.py  [--quick]
"""

import sys

from repro.experiments.runner import run_experiment, video_only


def main(quick: bool = False) -> None:
    duration = 30.0 if quick else 119.0
    n = 4 if quick else 10
    print(f"{n} video clients, {duration:.0f}s trace\n")
    print("interval   stream   avg-saved  min    max    loss   downshifts")
    for label, interval in (("100ms", 0.1), ("500ms", 0.5), ("variable", None)):
        for rate in (56, 256, 512):
            result = run_experiment(
                video_only(
                    [rate] * n, burst_interval_s=interval,
                    duration_s=duration, seed=1,
                )
            )
            summary = result.video_summary
            print(
                f"{label:<9} {rate:>4}K   {summary.avg_saved_pct:6.1f}%"
                f"  {summary.min_saved_pct:5.1f}  {summary.max_saved_pct:5.1f}"
                f"  {summary.avg_loss_pct:5.2f}%"
                f"  {result.downshifts}"
            )
    print(
        "\npaper (500ms): 56K=77%, 256K=66%, 512K=53%; "
        "100ms is worse everywhere; 512K x10 saturates and adapts"
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
