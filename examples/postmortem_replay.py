#!/usr/bin/env python
"""The paper's postmortem workflow: capture once, analyze many policies.

Runs one live experiment, saves the monitoring station's capture to a
file (the tcpdump analog), then replays the capture offline against a
sweep of early-transition amounts and two compensation algorithms —
without re-running the network simulation. This is how the paper's
§4.1 simulator produced Figure 6.

Run:  python examples/postmortem_replay.py
"""

import tempfile
from pathlib import Path

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator, FixedClockCompensator
from repro.core.scheduler import DynamicScheduler
from repro.energy.replay import replay_policy
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.capture_io import load_capture, save_capture
from repro.wnic.power import WAVELAN_2_4GHZ
from repro.workloads.video import (
    VIDEO_PORT,
    VideoClientApp,
    VideoServerApp,
    VideoStreamConfig,
)


def run_live_capture(path: Path) -> float:
    """One 30 s live run with four 56 kbps clients; saves the capture."""
    scenario = build_scenario(ScenarioConfig(n_clients=4, seed=17))
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=0.1
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for index, handle in enumerate(scenario.clients):
        handle.daemon = PowerAwareClient(handle.node, handle.wnic)
        server_app = VideoServerApp(
            scenario.video_server,
            Endpoint(handle.node.ip, VIDEO_PORT),
            VideoStreamConfig(nominal_kbps=56, duration_s=30.0),
            rng=scenario.streams.get(f"video:{index}"),
            stream_id=index,
            start_at=0.5 + index,
        )
        VideoClientApp(
            handle.node,
            Endpoint(VIDEO_SERVER_IP, VIDEO_PORT),
            feedback_endpoint=server_app.feedback_endpoint,
            report_offset_s=0.05 + 0.293 * index,
        )
    scenario.sim.run(until=32.0)
    save_capture(scenario.monitor.frames, path)
    print(
        f"captured {len(scenario.monitor.frames)} frames "
        f"({scenario.monitor.bytes_captured()/1024:.0f} KiB on air) -> {path}"
    )
    return scenario.sim.now


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        horizon = run_live_capture(path)
        frames = load_capture(path)

        print("\nearly(ms)  algorithm        saved   missed-scheds  frames-missed")
        for early_ms in (0, 2, 6, 10):
            result = replay_policy(
                frames, client_ip(0),
                AdaptiveCompensator(early_s=early_ms / 1000.0),
                WAVELAN_2_4GHZ, duration_s=horizon,
            )
            print(
                f"{early_ms:>8}   adaptive        "
                f"{result.report.energy_saved_pct:5.1f}%"
                f"  {result.missed_schedules:>12}"
                f"  {result.frames_missed:>12}"
            )
        # And one alternative algorithm on the very same capture:
        result = replay_policy(
            frames, client_ip(0),
            FixedClockCompensator(early_s=0.006, clock_offset_estimate_s=0.02),
            WAVELAN_2_4GHZ, duration_s=horizon,
        )
        print(
            f"{6:>8}   fixed(+20ms err)"
            f" {result.report.energy_saved_pct:5.1f}%"
            f"  {result.missed_schedules:>12}"
            f"  {result.frames_missed:>12}"
        )


if __name__ == "__main__":
    main()
