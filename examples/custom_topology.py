#!/usr/bin/env python
"""Composing the library's pieces by hand (no experiment runner).

Builds a miniature cell from the public API — simulator, links, medium,
access point, proxy, scheduler, one power-aware client — and feeds it a
custom bursty workload. Useful as a template for topologies the runner
does not cover (multiple cells, different jitter models, ...).

Run:  python examples/custom_topology.py
"""

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.proxy import TransparentProxy
from repro.core.scheduler import DynamicScheduler
from repro.energy.analyzer import EnergyAnalyzer
from repro.net.access_point import AccessPoint
from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.sniffer import MonitoringStation
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator, TraceRecorder
from repro.units import mbps, ms
from repro.wnic import WAVELAN_2_4GHZ, Wnic


def main() -> None:
    sim = Simulator()
    streams = RngStreams(seed=42)
    trace = TraceRecorder()

    # -- wireless cell ----------------------------------------------------
    medium = WirelessMedium(sim, rng=streams.get("backoff"), trace=trace)
    ap = AccessPoint(sim, "ap", "10.0.0.254", rng=streams.get("ap"))
    medium.attach(ap.wireless, gateway=True)
    monitor = MonitoringStation(sim)
    monitor.attach_to(medium)

    # -- client -----------------------------------------------------------
    client = Node(sim, "tablet", "10.0.1.1", trace=trace)
    wl0 = client.add_interface("wl0")
    medium.attach(wl0)
    client.set_default_route(wl0)
    wnic = Wnic(sim, "tablet", trace=trace)

    # -- proxy + server ---------------------------------------------------
    proxy = TransparentProxy(sim, "proxy", "10.0.0.1", {"10.0.1.1"}, trace=trace)
    Link(sim, mbps(100), ms(0.1)).attach(proxy.air, ap.wired)
    server = Node(sim, "server", "10.0.2.1")
    server_iface = server.add_interface("eth0")
    Link(sim, mbps(100), ms(0.1)).attach(proxy.lan, server_iface)
    server.set_default_route(server_iface)
    proxy.wire_routes({"10.0.2.1"})

    scheduler = DynamicScheduler(proxy, calibrate(medium), interval_s=0.2)
    proxy.attach_scheduler(scheduler)
    proxy.start()
    PowerAwareClient(client, wnic, AdaptiveCompensator(early_s=0.006))

    # -- a custom ON/OFF workload: 2 s bursts of sensor data, 3 s silence --
    UdpSocket(client, 9000)
    sender = UdpSocket(server, 9001)

    def workload():
        while sim.now < 30.0:
            until = sim.now + 2.0
            while sim.now < until:  # ON period: 20 packets/s
                sender.sendto(400, Endpoint("10.0.1.1", 9000))
                yield sim.timeout(0.05)
            yield sim.timeout(3.0)  # OFF period

    sim.process(workload())
    sim.run(until=31.0)

    # -- postmortem energy analysis ----------------------------------------
    analyzer = EnergyAnalyzer(
        monitor.frames, WAVELAN_2_4GHZ, duration_s=sim.now, trace=trace
    )
    report = analyzer.analyze("tablet", "10.0.1.1", wnic, kind="video")
    breakdown = report.breakdown
    print(
        f"awake {breakdown.high_power_s:.2f}s of {sim.now:.0f}s "
        f"({breakdown.receive_s:.2f}s receiving), "
        f"{breakdown.wake_count} wake-ups"
    )
    print(
        f"energy {report.energy_j:.1f} J vs naive {report.naive_energy_j:.1f} J"
        f" -> saved {report.energy_saved_pct:.1f}%"
    )
    print(f"packets missed: {report.packets_missed}/{report.packets_expected}")


if __name__ == "__main__":
    main()
