#!/usr/bin/env python
"""Quickstart: ten clients stream 56 kbps video through the proxy.

Reproduces the headline result of the paper in one call: clients
receiving low-bandwidth streams through the power-aware scheduling
proxy save well over 75 % of their WNIC energy versus a naive,
always-on client.

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import run_experiment, video_only


def main() -> None:
    config = video_only(
        bitrates_kbps=[56] * 10,  # ten clients, identical streams
        burst_interval_s=0.5,  # the paper's best fixed interval
        duration_s=119.0,  # the trailer's length (1:59)
        seed=1,
    )
    result = run_experiment(config)

    print("client      saved   vs-optimal   loss   missed-scheds")
    for report in result.clients:
        print(
            f"{report.name:<10} {report.energy_saved_pct:6.1f}%"
            f"   {report.optimal_saved_pct:6.1f}%"
            f"  {report.loss_pct:5.2f}%"
            f"   {report.missed_schedules}"
        )
    summary = result.summary
    print(
        f"\naverage saved {summary.avg_saved_pct:.1f}% "
        f"(min {summary.min_saved_pct:.1f}, max {summary.max_saved_pct:.1f}); "
        f"paper reports 77% for this configuration"
    )


if __name__ == "__main__":
    main()
