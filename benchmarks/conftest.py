"""Everything under benchmarks/ is tier ``bench`` (see pyproject
addopts); CI and developers opt in with ``-m bench``."""

import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    for item in items:
        if BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)
