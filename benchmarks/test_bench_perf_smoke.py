"""Perf smoke: cold figure-4 quick grid, ``jobs=1`` vs ``jobs=2``.

The minimal fan-out gate, kept separate from the fuller
``test_bench_sweep`` so CI can run it as a dedicated perf-smoke job:
two cold sweeps (no cache), one serial, one parallel. On a multi-core
host the warm pool must make ``jobs=2`` beat serial outright — the
regression this guards is the pre-warm-pool state where spawn/import
cost made parallel *slower* (0.86× in the BENCH_sweep trajectory). On
a single CPU a genuine speedup is impossible by construction, so only
the pool's overhead is bounded.

Bench tier (everything under benchmarks/ is); CI opts in with
``-m bench``.
"""

import os
import time

from repro.experiments.figures import figure4
from repro.sweep import SweepEngine


def _cold_figure4(jobs):
    engine = SweepEngine(jobs=jobs)
    started = time.perf_counter()
    rows = figure4(seed=1, quick=True, engine=engine)
    return rows, time.perf_counter() - started


def test_perf_smoke_parallel_beats_serial():
    serial_rows, serial_s = _cold_figure4(1)
    parallel_rows, parallel_s = _cold_figure4(2)

    # Same grid, same seeds: fan-out must not change the data.
    assert parallel_rows == serial_rows

    cpus = os.cpu_count() or 1
    print(
        f"\nperf-smoke: serial {serial_s:.2f}s, jobs=2 {parallel_s:.2f}s "
        f"({cpus} CPU(s))"
    )
    if cpus >= 2:
        assert parallel_s <= serial_s, (
            f"jobs=2 slower than serial on {cpus} CPUs: "
            f"{parallel_s:.2f}s vs {serial_s:.2f}s"
        )
    else:
        # One CPU: bound the warm pool's overhead instead (spawn +
        # dispatch must stay a small fraction of the work).
        assert parallel_s <= serial_s * 1.35, (
            f"warm-pool overhead too high on 1 CPU: "
            f"{parallel_s:.2f}s vs serial {serial_s:.2f}s"
        )
