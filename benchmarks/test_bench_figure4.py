"""E1 — Figure 4: ten UDP video clients, three burst intervals.

Paper values (500 ms): 56K saves 77 %, 256K 66 %, 512K 53 %; mixed
patterns average ≈69 %; 100 ms is consistently worse than 500 ms.
"""

from repro.experiments.figures import figure4

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "interval", "pattern", "avg_saved_pct", "min_saved_pct",
    "max_saved_pct", "avg_loss_pct", "downshifts",
]


def test_bench_figure4(benchmark):
    rows = benchmark.pedantic(figure4, kwargs={"seed": 1}, rounds=1, iterations=1)
    save_results("figure4", rows)
    print_table("Figure 4 — UDP video clients", rows, COLUMNS)

    by_cell = {(r["interval"], r["pattern"]): r for r in rows}
    # Savings fall with fidelity at every interval.
    for interval in ("100ms", "500ms", "variable"):
        assert (
            by_cell[(interval, "56K")]["avg_saved_pct"]
            > by_cell[(interval, "256K")]["avg_saved_pct"]
            > by_cell[(interval, "512K")]["avg_saved_pct"]
        )
    # 500 ms beats 100 ms (the early-transition penalty, §4.3).
    for pattern in ("56K", "256K", "512K", "56K_512K", "All"):
        assert (
            by_cell[("500ms", pattern)]["avg_saved_pct"]
            > by_cell[("100ms", pattern)]["avg_saved_pct"]
        )
    # Headline magnitudes within a reasonable band of the paper's.
    assert abs(by_cell[("500ms", "56K")]["avg_saved_pct"] - 77.0) < 10.0
    assert abs(by_cell[("500ms", "256K")]["avg_saved_pct"] - 66.0) < 10.0
    assert abs(by_cell[("500ms", "512K")]["avg_saved_pct"] - 53.0) < 10.0
    # Mixed-fidelity patterns land between the extremes (≈69 % in paper).
    assert 55.0 < by_cell[("500ms", "56K_512K")]["avg_saved_pct"] < 85.0
    # Loss is typically below the paper's 2 % bar (allow slack at 100 ms).
    assert by_cell[("500ms", "56K")]["avg_loss_pct"] < 2.0
    # Ten 512K streams exceed the medium: adaptation kicks in (§4.3).
    assert by_cell[("500ms", "512K")]["downshifts"] > 0
