"""E5 — Figure 6: the early-transition-amount sweep.

Paper: sweeping 0/2/4/6/8/10 ms on a 100 ms interval, total wasted
energy is U-shaped with the minimum at 6 ms — small amounts miss
schedules (big recovery cost), large amounts idle needlessly. Missed
packets ranged 0.97 % (10 ms) to 1.83 % (0 ms).
"""

from repro.experiments.figures import figure6

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "early_ms", "early_waste_j", "missed_schedule_waste_j", "total_waste_j",
    "missed_schedules", "missed_pct", "avg_saved_pct",
]


def test_bench_figure6(benchmark):
    rows = benchmark.pedantic(figure6, kwargs={"seed": 1}, rounds=1, iterations=1)
    save_results("figure6", rows)
    print_table("Figure 6 — early transition amount sweep", rows, COLUMNS)

    by_early = {r["early_ms"]: r for r in rows}
    # Early-wake waste grows with the early amount ...
    assert by_early[10]["early_waste_j"] > by_early[2]["early_waste_j"]
    # ... while missed-schedule waste shrinks.
    assert (
        by_early[0]["missed_schedule_waste_j"]
        > by_early[6]["missed_schedule_waste_j"]
    )
    assert (
        by_early[0]["missed_schedules"] >= by_early[6]["missed_schedules"]
    )
    # The paper's chosen operating point (6 ms) beats both extremes.
    assert by_early[6]["total_waste_j"] < by_early[0]["total_waste_j"]
    assert by_early[6]["total_waste_j"] <= by_early[10]["total_waste_j"] * 1.2
    # Loss falls as the early amount grows (paper: 1.83 % -> 0.97 %).
    assert by_early[0]["missed_pct"] >= by_early[10]["missed_pct"]
