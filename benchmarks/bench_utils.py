"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style rows *and* persists them as JSON
under ``benchmarks/results/`` so EXPERIMENTS.md can be regenerated and
diffed without re-running the sweeps.

Two files per benchmark:

* ``<name>.json`` — the latest rows (overwritten each run; what the
  report generator reads);
* ``BENCH_<name>.json`` — the *trajectory*: one timestamped entry
  appended per run, so perf/behaviour drift is visible across commits.
"""

from __future__ import annotations

import json
import pathlib
from datetime import datetime, timezone
from typing import Any, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_results(
    name: str, rows: Any, meta: Optional[dict] = None
) -> pathlib.Path:
    """Persist ``rows`` (list/dict) as benchmarks/results/<name>.json
    and append a timestamped entry to the BENCH_<name>.json trajectory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(rows, indent=2, default=str) + "\n")
    append_trajectory(name, rows, meta)
    return path


def append_trajectory(
    name: str, rows: Any, meta: Optional[dict] = None
) -> pathlib.Path:
    """Append one run's rows to benchmarks/results/BENCH_<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    try:
        history = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        history = []
    entry: dict = {
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "rows": rows,
    }
    if meta:
        entry["meta"] = meta
    history.append(entry)
    path.write_text(json.dumps(history, indent=2, default=str) + "\n")
    return path


def load_trajectory(name: str) -> list[dict]:
    """Read benchmarks/results/BENCH_<name>.json, tolerating absence.

    A missing or unreadable trajectory is a fresh checkout or a
    never-seeded benchmark, not an error: print why we're skipping the
    comparison and return an empty history so callers can guard with
    a simple truthiness check.
    """
    path = RESULTS_DIR / f"BENCH_{name}.json"
    try:
        history = json.loads(path.read_text())
    except FileNotFoundError:
        print(
            f"no trajectory at {path} — skipping cross-run comparison "
            f"(first run seeds it)"
        )
        return []
    except json.JSONDecodeError as exc:
        print(
            f"unreadable trajectory at {path} ({exc}) — skipping "
            f"cross-run comparison"
        )
        return []
    return history if isinstance(history, list) else []


def print_table(title: str, rows: list[dict], columns: list[str]) -> None:
    """Print rows as a fixed-width table (the paper-figure data)."""
    print(f"\n=== {title} ===")
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, dict):
        return " ".join(f"{k}:{_fmt(v)}" for k, v in value.items())
    return str(value)
