"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style rows *and* persists them as JSON
under ``benchmarks/results/`` so EXPERIMENTS.md can be regenerated and
diffed without re-running the sweeps.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_results(name: str, rows: Any) -> pathlib.Path:
    """Persist ``rows`` (list/dict) as benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(rows, indent=2, default=str) + "\n")
    return path


def print_table(title: str, rows: list[dict], columns: list[str]) -> None:
    """Print rows as a fixed-width table (the paper-figure data)."""
    print(f"\n=== {title} ===")
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, dict):
        return " ".join(f"{k}:{_fmt(v)}" for k, v in value.items())
    return str(value)
