"""E11 — §5 future work: schedule reuse.

When consecutive schedules are identical the proxy flags
``repeats_next`` and skips the next broadcast; clients then skip one
schedule wake-up per reused interval.
"""

from repro.experiments.tables import schedule_reuse

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "reuse_enabled", "avg_saved_pct", "schedules_sent",
    "schedules_reused", "avg_loss_pct",
]


def test_bench_schedule_reuse(benchmark):
    rows = benchmark.pedantic(
        schedule_reuse, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("schedule_reuse", rows)
    print_table("Schedule reuse (§5 future work)", rows, COLUMNS)

    off = next(r for r in rows if not r["reuse_enabled"])
    on = next(r for r in rows if r["reuse_enabled"])
    assert on["schedules_reused"] > 0
    assert on["schedules_sent"] < off["schedules_sent"]
    # Reuse must not hurt energy (it should help a little).
    assert on["avg_saved_pct"] >= off["avg_saved_pct"] - 0.5
    # ...and must not cost packets.
    assert on["avg_loss_pct"] < 3.0
