"""E4 — §4.3: comparison to the theoretical optimum.

Paper: optimal 90/83/77 % vs measured 77/66/53 % for 56K/256K/512K —
i.e. measured savings sit 10-24 points under the optimum, and both
decrease with fidelity.
"""

from repro.experiments.tables import optimal_comparison

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "stream", "optimal_pct", "measured_pct", "gap_pct",
    "paper_optimal_pct", "paper_measured_pct",
]


def test_bench_optimal(benchmark):
    rows = benchmark.pedantic(
        optimal_comparison, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("optimal_comparison", rows)
    print_table("Optimal vs measured (§4.3)", rows, COLUMNS)

    by_stream = {r["stream"]: r for r in rows}
    # Optimal dominates measured everywhere.
    for row in rows:
        assert row["optimal_pct"] > row["measured_pct"]
        # "energy savings within 10-15% of optimal are common" — allow
        # the gap to be anywhere from a little to ~25 points.
        assert 0.0 < row["gap_pct"] < 30.0
    # Both columns fall with fidelity.
    assert (
        by_stream["56K"]["optimal_pct"]
        > by_stream["256K"]["optimal_pct"]
        > by_stream["512K"]["optimal_pct"]
    )
    assert (
        by_stream["56K"]["measured_pct"]
        > by_stream["256K"]["measured_pct"]
        > by_stream["512K"]["measured_pct"]
    )
    # Optimal magnitudes near the paper's formula outputs.
    assert abs(by_stream["56K"]["optimal_pct"] - 90.0) < 8.0
    assert abs(by_stream["512K"]["optimal_pct"] - 77.0) < 8.0
