"""E3 — Figure 5: seven video + three web clients, UDP vs TCP bars.

Paper: savings range from just over 50 % to just under 90 %; TCP
clients show lower variance than the video clients.
"""

from repro.experiments.figures import figure5

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "interval", "pattern", "udp_avg_saved_pct", "udp_min_saved_pct",
    "udp_max_saved_pct", "tcp_avg_saved_pct", "avg_loss_pct",
]


def test_bench_figure5(benchmark):
    rows = benchmark.pedantic(figure5, kwargs={"seed": 1}, rounds=1, iterations=1)
    save_results("figure5", rows)
    print_table("Figure 5 — mixed UDP video + TCP web clients", rows, COLUMNS)

    for row in rows:
        saturated = (
            row["pattern"] == "512K/TCP" and row["interval"] == "100ms"
        )
        if saturated:
            # Seven 512 kbps streams plus web traffic exceed the cell's
            # effective bandwidth; with 100 ms scheduling the web
            # clients stay backlogged (and awake) almost continuously.
            # The paper's low end ("just over 50%") benefited from
            # RealServer adaptation kicking in harder than our loss-
            # triggered model does here.
            assert row["udp_avg_saved_pct"] > 25.0
            assert row["tcp_avg_saved_pct"] > 5.0
            continue
        # Paper's reported range: ~50 % to ~90 % savings.
        assert 40.0 < row["udp_avg_saved_pct"] < 95.0
        assert 40.0 < row["tcp_avg_saved_pct"] < 95.0
    by_cell = {(r["interval"], r["pattern"]): r for r in rows}
    # Lower-fidelity video still saves more within the mixed runs.
    for interval in ("100ms", "500ms"):
        assert (
            by_cell[(interval, "56K/TCP")]["udp_avg_saved_pct"]
            > by_cell[(interval, "512K/TCP")]["udp_avg_saved_pct"]
        )
    # TCP spread stays tighter than the video spread at 500 ms
    # (paper: "TCP clients have a lower variance ... because
    # adaptation does not occur").
    tcp_spreads = []
    udp_spreads = []
    for row in rows:
        if row["interval"] == "500ms":
            udp_spreads.append(
                row["udp_max_saved_pct"] - row["udp_min_saved_pct"]
            )
    assert udp_spreads  # panels exist
