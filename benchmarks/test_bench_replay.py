"""E5b — the paper's postmortem methodology: one capture, many policies.

Runs one live 100 ms experiment, captures the wireless trace, then
replays the capture offline against different early-transition amounts
— the way the paper's §4.1 simulator actually produced Figure 6 — and
checks the offline sweep agrees with the live behaviour.
"""

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.energy.replay import sweep_early_amounts
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.wnic.power import WAVELAN_2_4GHZ
from repro.workloads.video import (
    VIDEO_PORT,
    VideoClientApp,
    VideoServerApp,
    VideoStreamConfig,
)

from benchmarks.bench_utils import print_table, save_results


def run_capture_and_sweep():
    scenario = build_scenario(ScenarioConfig(n_clients=4, seed=5))
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=0.1
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    for index, handle in enumerate(scenario.clients):
        handle.daemon = PowerAwareClient(
            handle.node, handle.wnic, AdaptiveCompensator(early_s=0.006)
        )
        stream = VideoStreamConfig(nominal_kbps=56, duration_s=60.0)
        server_app = VideoServerApp(
            scenario.video_server,
            Endpoint(handle.node.ip, VIDEO_PORT),
            stream,
            rng=scenario.streams.get(f"video:{index}"),
            stream_id=index,
            start_at=0.5 + index,
        )
        VideoClientApp(
            handle.node, Endpoint(VIDEO_SERVER_IP, VIDEO_PORT),
            feedback_endpoint=server_app.feedback_endpoint,
            report_offset_s=0.05 + 0.293 * index,
        )
    scenario.sim.run(until=62.0)

    frames = scenario.monitor.frames
    results = sweep_early_amounts(
        frames, client_ip(0), WAVELAN_2_4GHZ,
        early_amounts_s=[0.0, 0.002, 0.006, 0.010],
        duration_s=scenario.sim.now,
    )
    rows = [
        {
            "early_ms": early * 1000.0,
            "replay_saved_pct": result.report.energy_saved_pct,
            "replay_missed_schedules": result.missed_schedules,
            "replay_frames_missed": result.frames_missed,
            "replay_early_wait_s": result.report.early_wait_s,
        }
        for early, result in results
    ]
    return rows


def test_bench_replay_sweep(benchmark):
    rows = benchmark.pedantic(run_capture_and_sweep, rounds=1, iterations=1)
    save_results("replay_sweep", rows)
    print_table("Postmortem replay sweep (§4.1 methodology)", rows, [
        "early_ms", "replay_saved_pct", "replay_missed_schedules",
        "replay_frames_missed", "replay_early_wait_s",
    ])

    by_early = {r["early_ms"]: r for r in rows}
    # Zero early amount misses the most; larger amounts idle more.
    assert (
        by_early[0.0]["replay_frames_missed"]
        >= by_early[6.0]["replay_frames_missed"]
    )
    assert (
        by_early[10.0]["replay_early_wait_s"]
        > by_early[2.0]["replay_early_wait_s"]
    )
    # All replays still save substantial energy.
    for row in rows:
        assert row["replay_saved_pct"] > 50.0
