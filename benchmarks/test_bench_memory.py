"""E10 — §3.2.2: proxy memory requirements.

Paper: "even if one second of data (to all clients) had to be
buffered, 512KB would be sufficient" at ~4 Mb/s effective bandwidth.
"""

from repro.experiments.tables import memory_footprint

from benchmarks.bench_utils import print_table, save_results


def test_bench_memory_footprint(benchmark):
    row = benchmark.pedantic(
        memory_footprint, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("memory_footprint", row)
    print_table(
        "Proxy buffer high-water mark (§3.2.2)", [row],
        ["peak_buffer_bytes", "claimed_bound_bytes", "within_claim"],
    )
    assert row["peak_buffer_bytes"] > 0
    # The paper's envelope: about one second of full-bandwidth data.
    # Our web workload can queue somewhat more across bursts; assert
    # the same order of magnitude.
    assert row["peak_buffer_bytes"] <= 2 * row["claimed_bound_bytes"]
