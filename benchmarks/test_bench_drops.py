"""E9 — §4.3: the packet-drop validation experiments.

Paper: (a) Netfilter configured to really drop packets while the card
sleeps lengthened transfers by no more than ~10 %; (b) a DummyNet pipe
at 4 Mb/s, 2 ms RTT, 5 % drop rate showed similar results. Our TCP
lacks SACK (Linux 2.4 had it), so the DummyNet slowdown is larger; the
bench asserts the qualitative claim — the transfer completes with a
bounded, moderate slowdown.
"""

from repro.experiments.tables import drop_effect_dummynet, drop_effect_netfilter

from benchmarks.bench_utils import print_table, save_results


def test_bench_drops_netfilter(benchmark):
    rows = benchmark.pedantic(
        drop_effect_netfilter, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("drop_effect_netfilter", rows)
    print_table(
        "Netfilter drop-when-asleep (§4.3)", rows,
        ["setup", "transfer_s_drops_enforced", "transfer_s_receive_anyway",
         "slowdown_fraction"],
    )
    by_setup = {r["setup"]: r for r in rows}
    single = by_setup["single-client"]
    assert single["transfer_s_drops_enforced"] is not None
    # The paper's single-client setup: at most a modest slowdown.
    assert single["slowdown_fraction"] <= 0.10


def test_bench_drops_dummynet(benchmark):
    row = benchmark.pedantic(
        drop_effect_dummynet, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("drop_effect_dummynet", row)
    print_table(
        "DummyNet 4 Mb/s / 2 ms RTT / 5% loss (§4.3)", [row],
        ["transfer_s_clean", "transfer_s_5pct_loss", "slowdown_fraction"],
    )
    assert row["transfer_s_5pct_loss"] != float("inf")  # completes
    # Qualitative: bounded slowdown. The paper saw ~10% with Linux 2.4
    # TCP (SACK); our Reno/NewReno with delayed ACKs loses more time to
    # RTOs on multi-loss windows — see EXPERIMENTS.md.
    assert row["slowdown_fraction"] < 5.0
