"""Sweep orchestration: cold vs warm cache, serial vs parallel fan-out.

Gates (quick figure-4 grid, 15 runs):

* a warm-cache rerun executes zero simulations and is dramatically
  faster than the cold run;
* parallel (``jobs=2``) wall time is no worse than serial — with a
  small multi-process overhead allowance when the host has a single
  CPU, where real speedup is impossible by construction;
* parallel results are byte-identical to serial (the determinism
  contract, checked on the pickled aggregate).

Persists a ``sweep`` rows file (the EXPERIMENTS.md cold-vs-warm table)
and the ``BENCH_sweep.json`` trajectory. Every row carries the code
fingerprint and the host CPU count (:data:`ROW_SCHEMA`) so trajectory
entries recorded on different machines — or against different code —
are interpretable side by side.
"""

import json
import os
import pickle
import time

from repro.experiments.figures import figure4
from repro.sweep import ResultCache, SweepEngine
from repro.sweep.cache import code_fingerprint

from benchmarks.bench_utils import RESULTS_DIR, print_table, save_results

COLUMNS = [
    "mode", "jobs", "wall_s", "executed", "cache_hits", "speedup_vs_cold",
    "cpus", "fingerprint",
]

#: Keys every persisted row must carry (the trajectory schema).
#: ``fingerprint`` identifies the code under test (12-hex prefix of the
#: sweep cache's :func:`code_fingerprint`); ``cpus`` the machine it ran
#: on. Rows predating the schema were backfilled with ``fingerprint:
#: None`` and the entry-level ``meta.cpus``.
ROW_SCHEMA = frozenset(COLUMNS)


def _timed_figure4(engine):
    started = time.perf_counter()
    rows = figure4(seed=1, quick=True, engine=engine)
    return rows, time.perf_counter() - started


def test_bench_sweep(tmp_path):
    cache_dir = tmp_path / "cache"

    cold_engine = SweepEngine(jobs=1, cache=ResultCache(cache_dir))
    cold_rows, cold_s = _timed_figure4(cold_engine)
    cold_report = cold_engine.last_report

    warm_engine = SweepEngine(jobs=1, cache=ResultCache(cache_dir))
    warm_rows, warm_s = _timed_figure4(warm_engine)
    warm_report = warm_engine.last_report

    parallel_engine = SweepEngine(jobs=2)
    parallel_rows, parallel_s = _timed_figure4(parallel_engine)
    parallel_report = parallel_engine.last_report

    serial_engine = SweepEngine(jobs=1)
    serial_rows, serial_s = _timed_figure4(serial_engine)

    cpus = os.cpu_count() or 1
    fingerprint = code_fingerprint()[:12]
    rows = [
        {
            "mode": "cold-serial", "jobs": 1, "wall_s": cold_s,
            "executed": cold_report.executed,
            "cache_hits": cold_report.cache_hits,
            "speedup_vs_cold": 1.0,
            "cpus": cpus, "fingerprint": fingerprint,
        },
        {
            "mode": "warm", "jobs": 1, "wall_s": warm_s,
            "executed": warm_report.executed,
            "cache_hits": warm_report.cache_hits,
            "speedup_vs_cold": cold_s / warm_s,
            "cpus": cpus, "fingerprint": fingerprint,
        },
        {
            "mode": "parallel-uncached", "jobs": 2, "wall_s": parallel_s,
            "executed": parallel_report.executed,
            "cache_hits": parallel_report.cache_hits,
            "speedup_vs_cold": cold_s / parallel_s,
            "cpus": cpus, "fingerprint": fingerprint,
        },
    ]
    save_results("sweep", rows, meta={"cpus": cpus, "serial_s": serial_s})
    print_table("Sweep orchestration — figure-4 grid (quick)", rows, COLUMNS)

    # Schema gate: every trajectory entry — including backfilled
    # pre-schema ones — carries the full per-row key set.
    history = json.loads((RESULTS_DIR / "BENCH_sweep.json").read_text())
    for entry in history:
        for row in entry["rows"]:
            assert ROW_SCHEMA <= set(row), (
                f"trajectory row missing keys: {sorted(ROW_SCHEMA - set(row))}"
            )

    # Cold run simulates everything; warm run simulates nothing.
    assert cold_report.executed == 15 and cold_report.cache_hits == 0
    assert warm_report.executed == 0 and warm_report.cache_hits == 15
    assert warm_s < cold_s / 4.0

    # Determinism contract: the parallel aggregate is byte-identical.
    assert pickle.dumps(parallel_rows) == pickle.dumps(serial_rows)
    assert warm_rows == cold_rows == serial_rows

    # Fan-out gate: parallel wall time must not regress past serial.
    # With >=2 CPUs the pool must at least break even; on one CPU a
    # genuine speedup is impossible, so only bound the process-pool
    # overhead.
    allowance = 1.05 if cpus >= 2 else 1.35
    assert parallel_s <= serial_s * allowance, (
        f"jobs=2 took {parallel_s:.2f}s vs serial {serial_s:.2f}s "
        f"(allowance ×{allowance}, {cpus} CPU(s))"
    )
