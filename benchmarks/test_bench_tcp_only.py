"""E2 — §4.2 (text): ten web-browsing clients save 70-80 %."""

from repro.experiments.tables import tcp_only

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "interval", "avg_saved_pct", "min_saved_pct", "max_saved_pct",
    "avg_loss_pct", "pages_loaded",
]


def test_bench_tcp_only(benchmark):
    rows = benchmark.pedantic(tcp_only, kwargs={"seed": 1}, rounds=1, iterations=1)
    save_results("tcp_only", rows)
    print_table("TCP-only — ten web clients (§4.2)", rows, COLUMNS)

    for row in rows:
        # Paper: "between 70 and 80%". Our clients pay extra for
        # connection-setup wakes (each new TCP connection holds the
        # card up through its handshake), which the paper's kernel
        # timing hid — allow a modestly wider band.
        assert 55.0 < row["avg_saved_pct"] < 90.0
        assert row["pages_loaded"] > 0
        assert row["avg_loss_pct"] < 3.0
    by_interval = {r["interval"]: r for r in rows}
    # 500 ms lands inside the paper's stated range.
    assert 65.0 < by_interval["500ms"]["avg_saved_pct"] < 85.0
