"""E12 (extension) — 802.11b PSM versus the scheduling proxy.

The paper's §2 dismisses 802.11b power-save mode as "not a good match"
for streaming. This bench quantifies the comparison on the same
stream: PSM saves comparable energy but races its beacon-buffer
machinery against the stream and drops packets; the proxy's explicit
schedule delivers everything.
"""

from repro.experiments.baselines import psm_comparison

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "policy", "energy_saved_pct", "mean_latency_ms", "p95_latency_ms",
    "packets_delivered", "packets_missed",
]


def test_bench_psm_baseline(benchmark):
    rows = benchmark.pedantic(
        psm_comparison, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("psm_baseline", rows)
    print_table("802.11b PSM vs scheduling proxy", rows, COLUMNS)

    by_policy = {r["policy"]: r for r in rows}
    assert by_policy["naive"]["energy_saved_pct"] < 5.0
    # Both power policies save a lot of energy...
    assert by_policy["psm"]["energy_saved_pct"] > 50.0
    assert by_policy["proxy"]["energy_saved_pct"] > 50.0
    # ...but PSM loses packets on this stream; the proxy does not.
    assert by_policy["proxy"]["packets_missed"] == 0
    assert by_policy["psm"]["packets_missed"] > by_policy["proxy"]["packets_missed"]
    # Both add buffering latency versus naive.
    assert by_policy["naive"]["mean_latency_ms"] < 10.0
    assert by_policy["psm"]["mean_latency_ms"] > 20.0
