"""Observability overhead on the schedule-reuse workload.

Three modes of the same run:

* ``trace``  — trace rows only; the pre-obs baseline this repo shipped
  before the recorder facade existed;
* ``off``    — the NullRecorder: hooks present but every call a no-op;
* ``full``   — trace rows + metrics + spans.

The acceptance bar is on the NullRecorder: the facade's no-op hooks
must cost < 5% over the baseline. Full-instrumentation cost is
recorded in the trajectory for trend tracking but not gated.
"""

import time

from repro.experiments.runner import run_experiment, video_only

from benchmarks.bench_utils import print_table, save_results

REPS = 3
COLUMNS = [
    "t_null_s", "t_trace_s", "t_full_s",
    "null_overhead_pct", "full_overhead_pct",
]


def _best_time(obs_mode: str) -> float:
    best = float("inf")
    for _ in range(REPS):
        config = video_only(
            [56] * 4,
            burst_interval_s=0.1,
            duration_s=20.0,
            seed=1,
            reuse_schedules=True,
            obs_mode=obs_mode,
        )
        start = time.perf_counter()
        run_experiment(config)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_obs_overhead():
    t_trace = _best_time("trace")
    t_null = _best_time("off")
    t_full = _best_time("full")
    null_overhead_pct = (t_null / t_trace - 1.0) * 100.0
    full_overhead_pct = (t_full / t_trace - 1.0) * 100.0
    rows = [
        {
            "experiment": "obs-overhead",
            "t_null_s": round(t_null, 4),
            "t_trace_s": round(t_trace, 4),
            "t_full_s": round(t_full, 4),
            "null_overhead_pct": round(null_overhead_pct, 2),
            "full_overhead_pct": round(full_overhead_pct, 2),
        }
    ]
    save_results(
        "obs_overhead",
        rows,
        meta={
            "reps": REPS,
            "workload": "schedule-reuse: 4x video:56, 100 ms interval, 20 s",
        },
    )
    print_table("Observability overhead (schedule-reuse workload)", rows, COLUMNS)
    assert null_overhead_pct < 5.0, (
        f"NullRecorder hooks cost {null_overhead_pct:.2f}% over the "
        "trace-only baseline (budget: 5%)"
    )
