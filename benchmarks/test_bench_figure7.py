"""E8 — Figure 7: static schedule with fixed TCP/UDP slots at 500 ms.

Paper: with fixed-size slots, the TCP slot size is a lose-lose knob —
small slots starve TCP (end-to-end latency blows up toward seconds),
large slots waste energy on every TCP client (awake for the whole
slot). Video energy grows with fidelity in every configuration.
"""

from repro.experiments.figures import figure7

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "tcp_weight_pct", "video_energy_used_pct", "tcp_energy_used_pct",
    "tcp_latency_ms", "tcp_objects",
]


def test_bench_figure7(benchmark):
    rows = benchmark.pedantic(figure7, kwargs={"seed": 1}, rounds=1, iterations=1)
    save_results("figure7", rows)
    print_table("Figure 7 — static TCP/UDP slot split", rows, COLUMNS)

    by_weight = {r["tcp_weight_pct"]: r for r in rows}
    # Bigger TCP slot -> more TCP energy used (paper right panel bars).
    assert (
        by_weight[10]["tcp_energy_used_pct"]
        < by_weight[33]["tcp_energy_used_pct"]
        < by_weight[56]["tcp_energy_used_pct"]
    )
    # Smaller TCP slot -> (much) higher TCP latency (paper right panel
    # dots; seconds at the smallest slot).
    assert by_weight[10]["tcp_latency_ms"] > by_weight[33]["tcp_latency_ms"]
    assert by_weight[10]["tcp_latency_ms"] > 700.0
    # Video energy grows with fidelity (paper left panel).
    for row in rows:
        used = row["video_energy_used_pct"]
        assert used[56] < used[512]
