"""Ablation — delay-compensation algorithms (§3.3).

The paper motivates *adaptive* compensation by clock skew and AP
delay. This bench compares the adaptive algorithm against trusting
absolute timestamps with and without a clock error.
"""

from repro.experiments.tables import compensator_ablation

from benchmarks.bench_utils import print_table, save_results

COLUMNS = ["variant", "avg_saved_pct", "avg_loss_pct", "missed_schedules"]


def test_bench_compensators(benchmark):
    rows = benchmark.pedantic(
        compensator_ablation, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("compensator_ablation", rows)
    print_table("Delay compensation ablation (§3.3)", rows, COLUMNS)

    by_variant = {r["variant"]: r for r in rows}
    # A skewed clock with absolute timestamps is a disaster...
    assert (
        by_variant["fixed-skewed"]["missed_schedules"]
        > 10 * max(1, by_variant["adaptive"]["missed_schedules"])
    )
    assert (
        by_variant["fixed-skewed"]["avg_saved_pct"]
        < by_variant["adaptive"]["avg_saved_pct"]
    )
    # ...while the adaptive algorithm needs no clock sync to match the
    # perfectly-synchronized strawman.
    assert (
        by_variant["adaptive"]["avg_saved_pct"]
        > by_variant["fixed-exact"]["avg_saved_pct"] - 3.0
    )
