"""Ablation — the transparent double connection (§2, §3.2).

The paper splits each TCP connection at the proxy precisely because a
buffering proxy inside one end-to-end connection "will increase
round-trip times ... potentially decreasing the TCP window size and
hence increasing the transmission time". This bench quantifies that:
the same FTP download via (a) split connections, (b) a buffering
passthrough proxy, (c) no proxy at all.
"""

from repro.experiments.tables import split_connection_ablation

from benchmarks.bench_utils import print_table, save_results

COLUMNS = ["mode", "transfer_time_s", "done", "energy_saved_pct"]


def test_bench_split_ablation(benchmark):
    rows = benchmark.pedantic(
        split_connection_ablation, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("split_ablation", rows)
    print_table("Split-connection ablation", rows, COLUMNS)

    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["split"]["done"]
    assert by_mode["bridge"]["done"]
    # Split pays only the burst-quantization cost (bounded by the
    # per-interval window) over the raw transfer; the buffering
    # passthrough — the design the paper rejects — is far slower
    # because the inflated RTT throttles the end-to-end window.
    assert (
        by_mode["split"]["transfer_time_s"]
        < 3.0 * by_mode["bridge"]["transfer_time_s"]
    )
    assert (
        by_mode["passthrough"]["transfer_time_s"]
        > 1.8 * by_mode["split"]["transfer_time_s"]
    )
    # Only the scheduled modes save energy.
    assert by_mode["split"]["energy_saved_pct"] > 50.0
    assert by_mode["bridge"]["energy_saved_pct"] < 5.0
