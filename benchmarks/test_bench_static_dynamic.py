"""E7 — §4.3: static schedule vs dynamic for identical streams.

Paper: "both average energy usage and variance is lowered by using a
static schedule" when all clients view identical streams at 100 ms.
"""

from repro.experiments.tables import static_vs_dynamic

from benchmarks.bench_utils import print_table, save_results

COLUMNS = [
    "stream", "static_avg_saved_pct", "static_variance",
    "dynamic_avg_saved_pct", "dynamic_variance",
]


def test_bench_static_vs_dynamic(benchmark):
    rows = benchmark.pedantic(
        static_vs_dynamic, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    save_results("static_vs_dynamic", rows)
    print_table("Static vs dynamic schedule (§4.3)", rows, COLUMNS)

    for row in rows:
        # Variance shrinks under the static schedule.
        assert row["static_variance"] <= row["dynamic_variance"] * 1.5
        # Average savings at least comparable (paper: strictly better;
        # we allow a small tolerance at the lowest rate, where many
        # intervals carry no packet for a given client).
        assert (
            row["static_avg_saved_pct"]
            >= row["dynamic_avg_saved_pct"] - 1.5
        )
    # For the mid/high fidelities the static advantage is clear.
    high = [r for r in rows if r["stream"] in ("256K", "512K")]
    assert any(
        r["static_avg_saved_pct"] > r["dynamic_avg_saved_pct"] for r in high
    )
