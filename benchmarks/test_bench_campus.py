"""Campus extension — cell-count × roam-rate grid (DESIGN.md §15).

Runs the full-size campus grid and persists it for EXPERIMENTS.md.
The meta entry records the scheduler hot-path note: `build_schedule`
used to recompute each client's backlog three times per interval and
`scheduling_backlog_by_kind` scanned the whole deque; both are now
single-pass/incremental, which is what makes the 1000-client shards in
the CI smoke affordable (see tools/memory_footprint.py for the bytes
side of that budget).
"""

from repro.experiments.figures import campus_grid

from benchmarks.bench_utils import load_trajectory, print_table, save_results

COLUMNS = [
    "cells", "roam_rate", "avg_saved_pct", "min_saved_pct",
    "avg_loss_pct", "handoffs", "handoff_bytes",
]


def test_bench_campus(benchmark):
    rows = benchmark.pedantic(
        campus_grid, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    history = load_trajectory("campus")
    save_results(
        "campus",
        rows,
        meta={
            "perf_note": (
                "scheduler hot path: build_schedule 3x backlog recompute "
                "-> 1x; scheduling_backlog_by_kind O(queue) deque scan "
                "-> O(1) incremental per-kind counters; iter_queues "
                "re-sort per interval -> cached sorted view"
            ),
            "prior_entries": len(history),
        },
    )
    print_table("Campus grid (cells × roam rate)", rows, COLUMNS)

    by_key = {(r["cells"], r["roam_rate"]): r for r in rows}
    # Sharding without roaming costs nothing: no handoffs, no loss.
    for cells in (1, 2, 4):
        still = by_key[(cells, 0.0)]
        assert still["handoffs"] == 0
        assert still["avg_loss_pct"] == 0.0
    # Roaming actually roams, and pays a bounded energy price.
    for cells in (2, 4):
        roaming = by_key[(cells, 0.1)]
        assert roaming["handoffs"] > 0
        assert roaming["avg_saved_pct"] > 50.0
        assert roaming["avg_saved_pct"] <= by_key[(cells, 0.0)]["avg_saved_pct"]
