"""Thin setup.py shim: metadata lives in pyproject.toml.

Kept so that legacy editable installs (``pip install -e .`` on
environments without the ``wheel`` package) keep working offline.
"""

from setuptools import setup

setup()
