"""(Re-)capture the kernel-equivalence goldens.

Runs the three scenarios pinned by ``tests/sim/test_kernel_equivalence``
and writes their canonical exports, digests and exact energy totals to
``tests/sim/goldens/``. Only run this after an *intentional* behaviour
change — the whole point of the suite is that kernel speed work never
needs a re-bless.

Usage::

    PYTHONPATH=src python tools/capture_kernel_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))

from sim.test_kernel_equivalence import (  # noqa: E402
    DIGEST_FILE,
    GOLDEN_DIR,
    SCENARIOS,
    run_scenario,
)

from repro.obs import digest  # noqa: E402


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    digests: dict = {}
    for name in sorted(SCENARIOS):
        produced = run_scenario(name)
        entry: dict = {"energy": produced["energy"]}
        for suffix in ("metrics.json", "events.jsonl"):
            (GOLDEN_DIR / f"{name}.{suffix}").write_text(produced[suffix])
            entry[suffix] = digest(produced[suffix])
        digests[name] = entry
        print(f"captured {name}: {entry['events.jsonl'][:16]}…")
    DIGEST_FILE.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {DIGEST_FILE}")


if __name__ == "__main__":
    main()
