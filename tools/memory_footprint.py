"""Measure the proxy's per-client resident memory (campus scale).

The paper argues the proxy's buffering is tiny (§3.2.2); the campus
extension multiplies clients by orders of magnitude, so the claim
worth gating is the *marginal* cost: bytes of proxy/topology state per
additional client. This tool builds a 4-cell campus at 100, 1k, and
10k clients under tracemalloc, touches every client queue (so lazily
created state is counted), and reports the marginal per-client bytes
between the 1k and 10k builds — the slope, with fixed costs cancelled.

CI gates it::

    python tools/memory_footprint.py --budget-bytes 6000

Exit status is 1 when the marginal per-client figure exceeds the
budget.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tracemalloc

#: Client populations measured; the marginal figure uses the last two.
POPULATIONS = (100, 1_000, 10_000)


def measure(n_clients: int, n_cells: int) -> int:
    """Peak traced bytes for one campus build at ``n_clients``."""
    from repro.campus import CampusTopology
    from repro.experiments.scenarios import ScenarioConfig, build_scenario

    gc.collect()
    tracemalloc.start()
    scenario = build_scenario(
        ScenarioConfig(
            n_clients=n_clients,
            obs_mode="off",
            campus=CampusTopology(n_cells=n_cells),
        )
    )
    for cell in scenario.cells:
        for ip in sorted(cell.proxy.client_ips):
            cell.proxy.queue_for(ip)
    size, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del scenario
    gc.collect()
    return size


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="campus per-client memory footprint"
    )
    parser.add_argument(
        "--cells", type=int, default=4,
        help="campus cell count (default 4, the CI smoke shape)",
    )
    parser.add_argument(
        "--budget-bytes", type=float, default=None,
        help="fail when marginal bytes/client exceeds this",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    sizes = {n: measure(n, args.cells) for n in POPULATIONS}
    low, high = POPULATIONS[-2], POPULATIONS[-1]
    marginal = (sizes[high] - sizes[low]) / (high - low)

    rows = [
        {
            "clients": n,
            "resident_bytes": sizes[n],
            "bytes_per_client": sizes[n] / n,
        }
        for n in POPULATIONS
    ]
    report = {
        "cells": args.cells,
        "rows": rows,
        "marginal_bytes_per_client": marginal,
    }
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        for row in rows:
            print(
                f"{row['clients']:>6} clients: "
                f"{row['resident_bytes']:>12,} B resident "
                f"({row['bytes_per_client']:,.0f} B/client)"
            )
        print(
            f"marginal ({low}→{high} clients): {marginal:,.0f} B/client"
        )
    if args.budget_bytes is not None and marginal > args.budget_bytes:
        print(
            f"FAIL: marginal {marginal:,.0f} B/client exceeds budget "
            f"{args.budget_bytes:,.0f} B/client",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
